"""Decomposition of CKKS operations into kernel-level work.

This module is the bridge between the CKKS algorithms (what work has to
happen, derived from the same formulas the functional implementation in
:mod:`repro.ckks` executes) and the GPU/CPU execution models (how long
that work takes).  Every public method returns an :class:`OperationCost`:
the list of kernels a GPU backend would launch, from which byte and
operation totals for the CPU baselines are also derived.

Backend-specific behaviour is expressed through constructor knobs:

* ``limb_batch`` -- how many limbs each element-wise/NTT kernel processes
  (FIDESlib's limb batching, §III-F.1).  ``None`` means "all limbs in a
  single kernel", which is the Phantom/OpenFHE behaviour.
* ``fusion`` -- whether the Rescale/ModDown/HMult/dot-product fusions of
  §III-F.5 are applied (they remove intermediate reads and writes).
* ``ntt_compute_factor`` -- relative arithmetic cost of the NTT butterfly
  (used to model Phantom's radix-8 formulation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.ckks.params import CKKSParameters
from repro.gpu.kernel import (
    ELEMENT_BYTES,
    Kernel,
    base_conversion_kernel,
    elementwise_kernel,
    ntt_kernel,
)
from repro.perf.calibration import ARITHMETIC, ArithmeticCosts


@dataclass
class OperationCost:
    """Kernel-level description of one CKKS operation."""

    name: str
    kernels: list[Kernel] = field(default_factory=list)

    @property
    def bytes_moved(self) -> float:
        """Total bytes read plus written."""
        return sum(k.bytes_moved for k in self.kernels)

    @property
    def int_ops(self) -> float:
        """Total integer operations."""
        return sum(k.int_ops for k in self.kernels)

    @property
    def kernel_count(self) -> int:
        """Number of kernel launches."""
        return int(round(sum(k.launches for k in self.kernels)))

    def extend(self, other: "OperationCost") -> None:
        """Append another operation's kernels (used to compose workloads)."""
        self.kernels.extend(other.kernels)

    def scaled(self, repetitions: float) -> "OperationCost":
        """Return this cost repeated ``repetitions`` times."""
        repeated = OperationCost(name=f"{self.name} x{repetitions:g}")
        repeated.kernels = [k.scaled(repetitions) for k in self.kernels]
        return repeated


class CKKSOperationCosts:
    """Builds :class:`OperationCost` objects for every CKKS primitive."""

    def __init__(
        self,
        params: CKKSParameters,
        *,
        limb_batch: int | None = None,
        fusion: bool = True,
        ntt_compute_factor: float = 1.0,
        fusion_penalty: float = 1.0,
        ntt_twiddle_traffic: bool = False,
        working_set_factor: float = 8.0,
        arithmetic: ArithmeticCosts = ARITHMETIC,
    ) -> None:
        self.params = params
        self.n = params.ring_degree
        self.limb_batch = limb_batch
        self.fusion = fusion
        self.ntt_compute_factor = ntt_compute_factor
        self.fusion_penalty = fusion_penalty
        #: When True the NTT kernels stream the full twiddle-factor vectors
        #: from memory instead of computing them "on the fly" (§III-F.4);
        #: used to model the Phantom baseline.
        self.ntt_twiddle_traffic = ntt_twiddle_traffic
        #: How many limb-batches of intermediate buffers the in-flight
        #: streams keep resident; determines whether consecutive kernels
        #: find their data in the L2 cache (the limb-batching trade-off of
        #: §III-F.1 and Figure 7).
        self.working_set_factor = working_set_factor
        self.arith = arithmetic

    # ------------------------------------------------------------------
    # kernel builders
    # ------------------------------------------------------------------

    def _limb_bytes(self) -> float:
        return self.n * ELEMENT_BYTES

    def _batches(self, limbs: int) -> list[int]:
        """Split ``limbs`` into per-kernel batches according to limb batching."""
        if limbs <= 0:
            return []
        if self.limb_batch is None or self.limb_batch >= limbs:
            return [limbs]
        full, rest = divmod(limbs, self.limb_batch)
        batches = [self.limb_batch] * full
        if rest:
            batches.append(rest)
        return batches

    def elementwise_kernels(
        self,
        tag: str,
        limbs: int,
        *,
        polys_read: float,
        polys_written: float,
        ops_per_element: float,
        reuse: float = 1.0,
    ) -> list[Kernel]:
        """Element-wise kernels over ``limbs`` limbs (split per limb batch).

        Built through the shared :func:`repro.gpu.kernel.elementwise_kernel`
        formula, the same one the execution-plane dispatcher uses when it
        records kernels from the live data plane.
        """
        kernels = []
        for index, batch in enumerate(self._batches(limbs)):
            kernels.append(
                elementwise_kernel(
                    tag,
                    batch,
                    self.n,
                    polys_read=polys_read,
                    polys_written=polys_written,
                    ops_per_element=ops_per_element,
                    reuse=reuse,
                    working_set_bytes=self._working_set(batch, polys_read + polys_written),
                    stream=index,
                )
            )
        return kernels

    def _working_set(self, batch_limbs: int, polys: float = 2.0) -> float:
        """Bytes of data the in-flight kernels keep hot in the L2 cache."""
        return self.working_set_factor * max(1.0, min(polys / 2.0, 2.0)) * batch_limbs * self._limb_bytes()

    def ntt_kernels(
        self,
        limbs: int,
        *,
        tag: str = "ntt",
        fused_elementwise_polys: float = 0.0,
        fused_ops_per_element: float = 0.0,
    ) -> list[Kernel]:
        """Hierarchical NTT kernels (4 memory accesses per element, Fig. 3).

        When fusion is enabled, fused element-wise pre/post processing adds
        arithmetic but no additional memory traffic; with fusion disabled
        the same processing is charged as separate element-wise kernels.
        """
        kernels = []
        for index, batch in enumerate(self._batches(limbs)):
            elements = batch * self.n
            extra_bytes = 0.0
            if self.ntt_twiddle_traffic:
                # Streaming the precomputed twiddle vectors from memory
                # instead of recomputing them on the fly (§III-F.4).
                extra_bytes += elements * ELEMENT_BYTES
            fused_ops = 0.0
            if self.fusion:
                fused_ops = fused_ops_per_element
            elif fused_elementwise_polys:
                extra_bytes += (
                    fused_elementwise_polys * elements * ELEMENT_BYTES * self.fusion_penalty
                )
            kernels.append(
                ntt_kernel(
                    tag,
                    batch,
                    self.n,
                    butterfly_ops=self.arith.butterfly_ops,
                    compute_factor=self.ntt_compute_factor,
                    fused_ops_per_element=fused_ops,
                    extra_bytes_read=extra_bytes,
                    working_set_bytes=self._working_set(batch),
                    stream=index,
                )
            )
        return kernels

    def base_conversion_kernels(
        self, source_limbs: int, target_limbs: int, *, tag: str = "baseconv"
    ) -> list[Kernel]:
        """Fast base conversion (Equation 1): the compute-bound kernel of §III-F.3."""
        if source_limbs <= 0 or target_limbs <= 0:
            return []
        return [
            base_conversion_kernel(
                tag,
                source_limbs,
                target_limbs,
                self.n,
                mac_ops=self.arith.baseconv_mac_ops,
            )
        ]

    def automorphism_kernels(self, limbs: int, polys: int = 2, *, tag: str = "automorph") -> list[Kernel]:
        """Coefficient permutation kernels for HRotate/HConjugate."""
        return self.elementwise_kernels(
            tag, limbs, polys_read=float(polys), polys_written=float(polys),
            ops_per_element=polys * 2.0,
        )

    # ------------------------------------------------------------------
    # primitive operations (Table I / Table V)
    # ------------------------------------------------------------------

    def hadd(self, limbs: int) -> OperationCost:
        """HAdd: element-wise addition of two ciphertexts."""
        cost = OperationCost("HAdd")
        cost.kernels = self.elementwise_kernels(
            "hadd", limbs, polys_read=4.0, polys_written=2.0,
            ops_per_element=2.0 * self.arith.modadd_ops,
        )
        return cost

    def ptadd(self, limbs: int) -> OperationCost:
        """PtAdd: addition of a plaintext into a ciphertext (in place)."""
        cost = OperationCost("PtAdd")
        cost.kernels = self.elementwise_kernels(
            "ptadd", limbs, polys_read=2.0, polys_written=1.0,
            ops_per_element=self.arith.modadd_ops,
        )
        return cost

    def scalar_add(self, limbs: int) -> OperationCost:
        """ScalarAdd: addition of a broadcast constant (c0 only)."""
        cost = OperationCost("ScalarAdd")
        cost.kernels = self.elementwise_kernels(
            "scalaradd", limbs, polys_read=1.0, polys_written=1.0,
            ops_per_element=self.arith.modadd_ops,
        )
        return cost

    def ptmult(self, limbs: int) -> OperationCost:
        """PtMult: plaintext-ciphertext multiplication."""
        cost = OperationCost("PtMult")
        cost.kernels = self.elementwise_kernels(
            "ptmult", limbs, polys_read=3.0, polys_written=2.0,
            ops_per_element=2.0 * self.arith.modmul_ops,
        )
        return cost

    def scalar_mult(self, limbs: int) -> OperationCost:
        """ScalarMult: multiplication by a broadcast constant.

        Includes the per-limb constant preparation pass that makes the
        routine more expensive than PtMult's element-wise product alone in
        the paper's measurements.
        """
        cost = OperationCost("ScalarMult")
        cost.kernels = self.elementwise_kernels(
            "scalarmult", limbs, polys_read=2.0, polys_written=2.0,
            ops_per_element=2.0 * self.arith.modmul_ops + self.arith.modadd_ops,
        )
        cost.kernels += self.elementwise_kernels(
            "scalar-encode", limbs, polys_read=1.0, polys_written=1.0,
            ops_per_element=self.arith.modmul_ops,
        )
        return cost

    def rescale(self, limbs: int) -> OperationCost:
        """Rescale: divide by the last prime and drop its limb.

        Per polynomial: one iNTT of the dropped limb plus an NTT of the
        switched limb fused with the subtract/scale step on every remaining
        limb (the "Rescale fusion").
        """
        cost = OperationCost("Rescale")
        remaining = max(1, limbs - 1)
        for _ in range(2):  # both ciphertext components
            cost.kernels += self.ntt_kernels(1, tag="rescale-intt")
            cost.kernels += self.ntt_kernels(
                remaining,
                tag="rescale-ntt",
                fused_elementwise_polys=2.0,
                fused_ops_per_element=self.arith.modmul_ops + self.arith.modadd_ops,
            )
        return cost

    def key_switch(self, limbs: int, *, input_in_coeff: bool = False) -> OperationCost:
        """Hybrid key switching of one polynomial at ``limbs`` active limbs."""
        params = self.params
        alpha = params.digit_size
        special = params.special_limb_count
        digits = math.ceil(limbs / alpha)
        extended = limbs + special
        cost = OperationCost("KeySwitch")
        # iNTT of the input polynomial (fused into the tensor step for HMult).
        if not input_in_coeff:
            cost.kernels += self.ntt_kernels(limbs, tag="ks-intt",
                                             fused_elementwise_polys=1.0,
                                             fused_ops_per_element=self.arith.modmul_ops)
        for digit in range(digits):
            digit_limbs = min(alpha, limbs - digit * alpha)
            target = extended - digit_limbs
            cost.kernels += self.base_conversion_kernels(digit_limbs, target, tag="modup")
            cost.kernels += self.ntt_kernels(target, tag="modup-ntt",
                                             fused_elementwise_polys=2.0,
                                             fused_ops_per_element=self.arith.modmul_ops)
        # Key inner product (dot-product fusion saves intermediate writes).
        writes = 2.0 if self.fusion else 2.0 * digits * self.fusion_penalty
        cost.kernels += self.elementwise_kernels(
            "ks-inner-product", extended,
            polys_read=3.0 * digits,
            polys_written=writes,
            ops_per_element=digits * 2.0 * (self.arith.modmul_ops + self.arith.modadd_ops),
        )
        # ModDown of both accumulated components.
        for _ in range(2):
            cost.kernels += self.ntt_kernels(special, tag="moddown-intt")
            cost.kernels += self.base_conversion_kernels(special, limbs, tag="moddown-conv")
            cost.kernels += self.ntt_kernels(
                limbs, tag="moddown-ntt",
                fused_elementwise_polys=2.0,
                fused_ops_per_element=self.arith.modmul_ops + self.arith.modadd_ops,
            )
        return cost

    def hmult(self, limbs: int, *, include_rescale: bool = False) -> OperationCost:
        """HMult: tensor product, relinearisation key switch and final add."""
        cost = OperationCost("HMult")
        cost.kernels += self.elementwise_kernels(
            "tensor", limbs, polys_read=4.0, polys_written=3.0,
            ops_per_element=4.0 * self.arith.modmul_ops + 2.0 * self.arith.modadd_ops,
        )
        cost.extend(self.key_switch(limbs))
        cost.kernels += self.elementwise_kernels(
            "relin-add", limbs, polys_read=4.0, polys_written=2.0,
            ops_per_element=2.0 * self.arith.modadd_ops,
        )
        if include_rescale:
            cost.extend(self.rescale(limbs))
        return cost

    def hsquare(self, limbs: int) -> OperationCost:
        """HSquare: cheaper tensor step (3 products instead of 4)."""
        cost = OperationCost("HSquare")
        cost.kernels += self.elementwise_kernels(
            "square-tensor", limbs, polys_read=2.0, polys_written=3.0,
            ops_per_element=3.0 * self.arith.modmul_ops + self.arith.modadd_ops,
        )
        cost.extend(self.key_switch(limbs))
        cost.kernels += self.elementwise_kernels(
            "relin-add", limbs, polys_read=4.0, polys_written=2.0,
            ops_per_element=2.0 * self.arith.modadd_ops,
        )
        return cost

    def hrotate(self, limbs: int) -> OperationCost:
        """HRotate / HConjugate: automorphism plus key switching."""
        cost = OperationCost("HRotate")
        cost.kernels += self.automorphism_kernels(limbs, polys=2)
        cost.extend(self.key_switch(limbs))
        cost.kernels += self.elementwise_kernels(
            "rotate-add", limbs, polys_read=2.0, polys_written=1.0,
            ops_per_element=self.arith.modadd_ops,
        )
        return cost

    def hoisted_rotations(self, limbs: int, rotation_count: int) -> OperationCost:
        """HoistedRotate: one decomposition shared by many rotations (§III-F.6)."""
        params = self.params
        alpha = params.digit_size
        special = params.special_limb_count
        digits = math.ceil(limbs / alpha)
        extended = limbs + special
        cost = OperationCost(f"HoistedRotate x{rotation_count}")
        # Shared decompose + ModUp.
        cost.kernels += self.ntt_kernels(limbs, tag="hoist-intt")
        for digit in range(digits):
            digit_limbs = min(alpha, limbs - digit * alpha)
            target = extended - digit_limbs
            cost.kernels += self.base_conversion_kernels(digit_limbs, target, tag="hoist-modup")
            cost.kernels += self.ntt_kernels(target, tag="hoist-modup-ntt")
        # Per-rotation work: automorphism of extended digits, key product, ModDown.
        for _ in range(rotation_count):
            cost.kernels += self.automorphism_kernels(extended * digits, polys=1,
                                                      tag="hoist-automorph")
            cost.kernels += self.elementwise_kernels(
                "hoist-inner-product", extended,
                polys_read=3.0 * digits, polys_written=2.0,
                ops_per_element=digits * 2.0 * (self.arith.modmul_ops + self.arith.modadd_ops),
            )
            for _ in range(2):
                cost.kernels += self.ntt_kernels(special, tag="hoist-moddown-intt")
                cost.kernels += self.base_conversion_kernels(special, limbs, tag="hoist-moddown")
                cost.kernels += self.ntt_kernels(limbs, tag="hoist-moddown-ntt",
                                                 fused_elementwise_polys=2.0,
                                                 fused_ops_per_element=self.arith.modmul_ops)
            cost.kernels += self.automorphism_kernels(limbs, polys=1, tag="hoist-c0")
            cost.kernels += self.elementwise_kernels(
                "hoist-add", limbs, polys_read=2.0, polys_written=1.0,
                ops_per_element=self.arith.modadd_ops,
            )
        return cost

    def ptmult_rescale(self, limbs: int) -> OperationCost:
        """The PtMult + Rescale sequence of Figure 5."""
        cost = OperationCost("PtMult+Rescale")
        cost.extend(self.ptmult(limbs))
        cost.extend(self.rescale(limbs))
        return cost

    def ntt_microbenchmark(self, limbs: int, *, inverse: bool = False) -> OperationCost:
        """A standalone batch of (i)NTTs over ``limbs`` limbs (Figure 4)."""
        tag = "intt" if inverse else "ntt"
        cost = OperationCost(tag.upper())
        cost.kernels = self.ntt_kernels(limbs, tag=tag)
        return cost


__all__ = ["OperationCost", "CKKSOperationCosts", "ELEMENT_BYTES"]
