"""Modular arithmetic primitives for word-sized prime moduli.

The CKKS scheme performs all polynomial arithmetic modulo a set of primes
``{q_0, ..., q_L}``.  Because GPUs (and CPUs) have no native modulo unit,
FIDESlib relies on the fast reduction techniques compared in Table III of
the paper:

* **Barrett reduction / multiplication** (the "improved Barrett" of
  Shivdikar et al. [50]) -- reduction by two multiplications using a
  precomputed reciprocal of the modulus.  FIDESlib uses Barrett as its
  general-purpose reduction because it needs no special operand encoding.
* **Montgomery reduction / multiplication** -- the same multiplication
  count, but operands must live in Montgomery form.
* **Shoup multiplication** -- the cheapest option when one operand is a
  known constant (twiddle factors, precomputed scalars); the constant's
  reciprocal is precomputed.

This module provides faithful scalar implementations of all three (used by
the NTT engine and exercised directly by the unit tests and the Table III
micro-benchmark) plus vectorised NumPy routines used by the bulk of the
library.  Three array backends are supported for the batched limb-stack
kernels:

* a **fast backend** (``uint64``) for moduli below 2**31, where a product
  of two residues fits in an unsigned 64-bit lane and NumPy's native ``%``
  is exact;
* a **double-word backend** (``dword``) for moduli in ``[2**31, 2**62)``
  -- the regime of the paper's 59/60-bit primes -- where each residue is
  stored as a pair of uint64 digit planes (``hi = r >> 32``,
  ``lo = r & 0xFFFFFFFF`` on a trailing ``(L, 2, N)`` axis, 2x the bytes
  per limb).  Kernels merge the planes into single uint64 lanes (values
  below 2**63 always fit), emulate the 64x64 -> 128-bit products with four
  32-bit digit multiplications, and reduce with improved Barrett
  (variable x variable) or 64-bit Shoup companions (constant operands) --
  entirely vectorized, no object arrays, no Python loops over ``N``; and
* an **exact backend** backed by Python integers (``dtype=object``), kept
  only as the exactness oracle for moduli at or above 2**62.

The stack backend is chosen per moduli column by :func:`stack_backend`;
the per-limb ``vec_*`` routines keep the two-way choice of
:func:`dtype_for_modulus` (they are the reference oracle the stack kernels
are tested against).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.dispatch import get_dispatcher
from repro.gpu import kernel as _kernelforms

#: Execution-plane dispatcher; every batched stack kernel reports through
#: it so recorded traces reflect what actually executed (a no-op unless a
#: trace is being recorded).
_DISPATCH = get_dispatcher()

#: Largest modulus for which the fast uint64 NumPy backend is exact:
#: residues are < 2**31, so products are < 2**62 and fit in a uint64 lane.
FAST_MODULUS_LIMIT = 1 << 31

#: Largest modulus the double-word (hi/lo digit) backend supports.  The
#: improved-Barrett remainder before correction lies in ``[0, 3q)``, which
#: must fit a uint64 lane, and the lazy ``[0, 2q)`` representatives the
#: NTT uses must leave headroom for one uncorrected butterfly sum
#: (``< 4q``); both hold exactly when ``q < 2**62`` (the same 62-bit cap
#: word-sized RNS libraries impose).  Paper-class 59/60-bit primes are
#: comfortably inside.
DWORD_MODULUS_LIMIT = 1 << 62

#: Machine word size assumed by the Montgomery/Shoup precomputations.
WORD_BITS = 64
WORD_BASE = 1 << WORD_BITS


# ---------------------------------------------------------------------------
# Scalar helpers
# ---------------------------------------------------------------------------


def add_mod(a: int, b: int, q: int) -> int:
    """Return ``(a + b) mod q`` for residues ``a, b`` in ``[0, q)``.

    The sum lies in ``[0, 2q)`` so a single conditional subtraction brings
    it back into range, exactly as the paper describes for modular
    addition on the GPU.
    """
    s = a + b
    if s >= q:
        s -= q
    return s


def sub_mod(a: int, b: int, q: int) -> int:
    """Return ``(a - b) mod q`` for residues in ``[0, q)``."""
    d = a - b
    if d < 0:
        d += q
    return d


def neg_mod(a: int, q: int) -> int:
    """Return ``(-a) mod q``."""
    return 0 if a == 0 else q - a


def mul_mod(a: int, b: int, q: int) -> int:
    """Return ``(a * b) mod q`` using Python's arbitrary precision."""
    return (a * b) % q


def pow_mod(base: int, exponent: int, q: int) -> int:
    """Return ``base ** exponent mod q``."""
    return pow(base, exponent, q)


def inv_mod(a: int, q: int) -> int:
    """Return the multiplicative inverse of ``a`` modulo ``q``.

    Raises :class:`ZeroDivisionError` if ``a`` is not invertible.
    """
    return pow(a, -1, q)


def bit_length(x: int) -> int:
    """Return the bit length of ``x`` (0 for 0)."""
    return int(x).bit_length()


# ---------------------------------------------------------------------------
# Barrett reduction (improved Barrett, Table III)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BarrettReducer:
    """Barrett modular reduction for a fixed modulus ``q``.

    Precomputes ``mu = floor(2**(2k) / q)`` where ``k = bitlen(q)``.  The
    :meth:`reduce` method accepts any value below ``q**2`` (the range of a
    residue product) and returns the canonical residue.  Following the
    improved Barrett formulation, the quotient estimate is off by at most
    one, so a single correction step suffices; the paper notes the output
    naturally falls in ``[0, 2q)`` before that final correction.
    """

    modulus: int
    shift: int
    mu: int

    @classmethod
    def create(cls, modulus: int) -> "BarrettReducer":
        if modulus < 2:
            raise ValueError(f"Barrett modulus must be >= 2, got {modulus}")
        k = bit_length(modulus)
        shift = 2 * k
        mu = (1 << shift) // modulus
        return cls(modulus=modulus, shift=shift, mu=mu)

    def reduce(self, x: int) -> int:
        """Reduce ``x`` (``0 <= x < q**2``) modulo ``q``."""
        q = self.modulus
        estimate = (x * self.mu) >> self.shift
        r = x - estimate * q
        # The estimate underestimates the true quotient by at most one.
        if r >= q:
            r -= q
        return r

    def mul(self, a: int, b: int) -> int:
        """Return ``(a * b) mod q`` via Barrett reduction of the product."""
        return self.reduce(a * b)

    def multiplication_count(self) -> dict:
        """Return the wide/low multiplication counts of Table III."""
        return {"wide": 2, "low": 1}


# ---------------------------------------------------------------------------
# Montgomery reduction (Table III)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MontgomeryReducer:
    """Montgomery modular arithmetic with ``R = 2**64``.

    Values are mapped into Montgomery form ``aR mod q`` with
    :meth:`to_montgomery`; :meth:`mul` multiplies two Montgomery-form
    values and returns a Montgomery-form result; :meth:`from_montgomery`
    converts back.  This mirrors the Table III observation that Montgomery
    multiplication matches Barrett's cost but requires operands in a
    special encoding -- the reason FIDESlib prefers Barrett for general
    use.
    """

    modulus: int
    r_bits: int
    r_mask: int
    q_inv_neg: int
    r2: int

    @classmethod
    def create(cls, modulus: int, r_bits: int = WORD_BITS) -> "MontgomeryReducer":
        if modulus % 2 == 0:
            raise ValueError("Montgomery reduction requires an odd modulus")
        r = 1 << r_bits
        q_inv = inv_mod(modulus, r)
        q_inv_neg = (-q_inv) % r
        r2 = (r * r) % modulus
        return cls(
            modulus=modulus,
            r_bits=r_bits,
            r_mask=r - 1,
            q_inv_neg=q_inv_neg,
            r2=r2,
        )

    def reduce(self, x: int) -> int:
        """Montgomery-reduce ``x < q * R``: returns ``x * R^-1 mod q``."""
        q = self.modulus
        m = ((x & self.r_mask) * self.q_inv_neg) & self.r_mask
        t = (x + m * q) >> self.r_bits
        if t >= q:
            t -= q
        return t

    def to_montgomery(self, a: int) -> int:
        """Map ``a`` to Montgomery form ``a * R mod q``."""
        return self.reduce(a * self.r2)

    def from_montgomery(self, a_mont: int) -> int:
        """Map a Montgomery-form value back to the canonical residue."""
        return self.reduce(a_mont)

    def mul(self, a_mont: int, b_mont: int) -> int:
        """Multiply two Montgomery-form residues (result in Montgomery form)."""
        return self.reduce(a_mont * b_mont)

    def mul_plain(self, a: int, b: int) -> int:
        """Multiply two canonical residues, handling the form conversions."""
        return self.from_montgomery(
            self.mul(self.to_montgomery(a), self.to_montgomery(b))
        )

    def multiplication_count(self) -> dict:
        """Return the wide/low multiplication counts of Table III."""
        return {"wide": 2, "low": 1}


# ---------------------------------------------------------------------------
# Shoup multiplication (Table III)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShoupMultiplier:
    """Shoup modular multiplication by a fixed constant ``b``.

    Precomputes ``b_shoup = floor(b * 2**64 / q)``.  Multiplying an
    arbitrary residue ``a`` by the constant then costs one wide and two low
    multiplications (Table III).  FIDESlib uses Shoup multiplication for
    the NTT twiddle factors and other precomputed constants.
    """

    modulus: int
    operand: int
    precomputed: int
    shift: int

    @classmethod
    def create(cls, operand: int, modulus: int, shift: int = WORD_BITS) -> "ShoupMultiplier":
        if not 0 <= operand < modulus:
            raise ValueError("Shoup operand must be a canonical residue")
        precomputed = (operand << shift) // modulus
        return cls(modulus=modulus, operand=operand, precomputed=precomputed, shift=shift)

    def mul(self, a: int) -> int:
        """Return ``(a * operand) mod q`` in ``[0, q)``."""
        q = self.modulus
        quotient = (a * self.precomputed) >> self.shift
        r = (a * self.operand - quotient * q) % (1 << self.shift)
        if r >= q:
            r -= q
        return r

    def multiplication_count(self) -> dict:
        """Return the wide/low multiplication counts of Table III."""
        return {"wide": 1, "low": 2}


# ---------------------------------------------------------------------------
# Vectorised routines
# ---------------------------------------------------------------------------


def dtype_for_modulus(q: int):
    """Return the NumPy dtype used to store residues modulo ``q``.

    Moduli below :data:`FAST_MODULUS_LIMIT` use the fast ``uint64`` path;
    larger (e.g. 59-bit) moduli fall back to exact Python integers stored
    in an ``object`` array.
    """
    return np.uint64 if q < FAST_MODULUS_LIMIT else np.object_


def is_fast_modulus(q: int) -> bool:
    """Return True when the fast uint64 backend is exact for modulus ``q``."""
    return q < FAST_MODULUS_LIMIT


def as_residue_array(values, q: int) -> np.ndarray:
    """Coerce ``values`` into a canonical residue array for modulus ``q``."""
    if is_fast_modulus(q):
        arr = np.asarray(values)
        if arr.dtype == np.object_:
            arr = np.array([int(v) % q for v in arr.ravel()], dtype=np.uint64).reshape(arr.shape)
            return arr
        arr = arr.astype(np.int64, copy=True)
        arr %= q
        return arr.astype(np.uint64)
    flat = [int(v) % q for v in np.asarray(values, dtype=object).ravel()]
    out = np.array(flat, dtype=object)
    return out.reshape(np.asarray(values, dtype=object).shape)


def zeros(n: int, q: int) -> np.ndarray:
    """Return an all-zero residue array of length ``n`` for modulus ``q``."""
    if is_fast_modulus(q):
        return np.zeros(n, dtype=np.uint64)
    return np.array([0] * n, dtype=object)


def vec_add_mod(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """Elementwise ``(a + b) mod q``."""
    if is_fast_modulus(q):
        s = a + b
        return np.where(s >= q, s - np.uint64(q), s)
    return (a + b) % q


def vec_sub_mod(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """Elementwise ``(a - b) mod q``."""
    if is_fast_modulus(q):
        s = a + np.uint64(q) - b
        return np.where(s >= q, s - np.uint64(q), s)
    return (a - b) % q


def vec_neg_mod(a: np.ndarray, q: int) -> np.ndarray:
    """Elementwise ``(-a) mod q``."""
    if is_fast_modulus(q):
        return np.where(a == 0, a, np.uint64(q) - a)
    return (-a) % q


def vec_mul_mod(a: np.ndarray, b, q: int) -> np.ndarray:
    """Elementwise ``(a * b) mod q``; ``b`` may be an array or a scalar."""
    if is_fast_modulus(q):
        if np.isscalar(b) or isinstance(b, (int, np.integer)):
            b = np.uint64(int(b) % q)
        return (a * b) % np.uint64(q)
    if np.isscalar(b) or isinstance(b, (int, np.integer)):
        b = int(b) % q
    return (a * b) % q


def vec_mul_scalar_mod(a: np.ndarray, scalar: int, q: int) -> np.ndarray:
    """Elementwise multiplication by a scalar constant modulo ``q``."""
    return vec_mul_mod(a, scalar % q, q)


def vec_to_int_list(a: np.ndarray) -> list:
    """Return the residues of ``a`` as a list of Python ints."""
    return [int(x) for x in np.asarray(a).ravel()]


def vec_switch_modulus(a: np.ndarray, q_from: int, q_to: int) -> np.ndarray:
    """Re-reduce residues of ``a`` (mod ``q_from``) into modulus ``q_to``.

    Residues are interpreted in the centred interval
    ``(-q_from/2, q_from/2]`` before reduction, which is the convention the
    base-conversion and mod-raise steps require to keep the underlying
    signed value intact.
    """
    values = np.array([int(x) for x in np.asarray(a).ravel()], dtype=object)
    half = q_from >> 1
    centred = np.where(values > half, values - q_from, values)
    reduced = [int(v) % q_to for v in centred]
    out = np.array(reduced, dtype=object).reshape(np.asarray(a).shape)
    return as_residue_array(out, q_to)


# ---------------------------------------------------------------------------
# Batched limb-stack routines
# ---------------------------------------------------------------------------
#
# The kernels below operate on a flat ``(num_limbs, N)`` residue stack -- the
# flattened allocation strategy of §III-D -- with the per-limb moduli held in
# an ``(L, 1)`` column that NumPy broadcasts across every row.  One call
# replaces a Python loop over per-limb vector routines, which is the batching
# the paper's §III-F kernels perform across limbs on the GPU.  The backend is
# chosen per moduli column (:func:`stack_backend`): single-word ``uint64``
# below :data:`FAST_MODULUS_LIMIT`, double-word ``(L, 2, N)`` digit planes
# below :data:`DWORD_MODULUS_LIMIT`, exact Python integers in an object
# array beyond that.

#: Elementwise ``int()`` over an array; the safe way to turn a uint64 array
#: into Python-integer objects (``astype(object)`` would keep ``np.uint64``
#: elements whose arithmetic silently wraps or degrades to float).
_to_object_ints = np.frompyfunc(int, 1, 1)


def all_fast_moduli(moduli) -> bool:
    """Return True when every modulus can use the fast uint64 backend."""
    return all(is_fast_modulus(int(q)) for q in moduli)


#: Stack-backend names, in increasing generality.
BACKEND_UINT64 = "uint64"
BACKEND_DWORD = "dword"
BACKEND_OBJECT = "object"


def backend_for_moduli(moduli) -> str:
    """Return the stack backend a set of moduli selects.

    ``uint64`` when every modulus is below 2**31, ``dword`` (hi/lo digit
    planes) when every modulus is below 2**62, ``object`` (exact Python
    integers) otherwise.  The backend is a pure function of the modulus
    values, so any sub-basis of a chain classifies consistently.
    """
    largest = max(int(q) for q in moduli)
    if largest < FAST_MODULUS_LIMIT:
        return BACKEND_UINT64
    if largest < DWORD_MODULUS_LIMIT:
        return BACKEND_DWORD
    return BACKEND_OBJECT


def moduli_column(moduli) -> np.ndarray:
    """Return the ``(L, 1)`` broadcastable column of stack moduli.

    The column dtype and values select the backend for the whole stack:
    ``uint64`` values below 2**62 (fast or double-word residues),
    ``object`` (exact Python integers) otherwise.  Columns are cached per
    moduli tuple -- every polynomial at the same level shares one
    (hot-path constructor cost).
    """
    return _moduli_column_cached(tuple(int(q) for q in moduli))


@lru_cache(maxsize=None)
def _moduli_column_cached(moduli: tuple) -> np.ndarray:
    backend = backend_for_moduli(moduli)
    dtype = np.object_ if backend == BACKEND_OBJECT else np.uint64
    column = np.array(moduli, dtype=dtype).reshape(-1, 1)
    # The column is shared by every stack and engine built over this
    # basis; freeze it so an accidental in-place write fails loudly
    # instead of corrupting the cache.
    column.flags.writeable = False
    return column


def stack_backend(moduli_col: np.ndarray) -> str:
    """Return the backend name a moduli column selects (see above)."""
    col = np.asarray(moduli_col)
    if col.dtype == np.object_:
        return BACKEND_OBJECT
    if int(col.max()) < FAST_MODULUS_LIMIT:
        return BACKEND_UINT64
    return BACKEND_DWORD


def stack_is_fast(moduli_col: np.ndarray) -> bool:
    """True when a moduli column selects the single-word uint64 backend."""
    return stack_backend(moduli_col) == BACKEND_UINT64


def stack_is_dword(moduli_col: np.ndarray) -> bool:
    """True when a moduli column selects the double-word backend."""
    return stack_backend(moduli_col) == BACKEND_DWORD


def object_row(values) -> np.ndarray:
    """Return a 1-D object array of Python ints (exact arithmetic)."""
    arr = np.asarray(values)
    if arr.dtype == np.object_:
        return arr
    return _to_object_ints(arr)


# -- double-word (hi/lo digit plane) representation -------------------------
#
# A dword stack stores residues on a ``(..., 2, N)`` trailing axis pair:
# plane 0 holds the high 32-bit digit (``r >> 32``), plane 1 the low digit
# (``r & 0xFFFFFFFF``), each in its own uint64 lane (2x the bytes of a
# single-word stack).  Because every supported modulus is below 2**62, the
# *merged* value -- and even a lazy ``[0, 2q)`` representative -- always
# fits one uint64, so kernels merge at entry, compute on single lanes with
# digit-product 128-bit emulation, and split at exit.

_M32 = np.uint64(0xFFFFFFFF)
_SH32 = np.uint64(32)


def dword_merge(data: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Merge ``(..., 2, N)`` hi/lo digit planes into ``(..., N)`` values."""
    data = np.asarray(data)
    hi = data[..., 0, :]
    lo = data[..., 1, :]
    if out is None:
        out = np.empty(hi.shape, dtype=np.uint64)
    np.left_shift(hi, _SH32, out=out)
    np.bitwise_or(out, lo, out=out)
    return out


def dword_split(merged: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Split ``(..., N)`` uint64 values into ``(..., 2, N)`` digit planes."""
    merged = np.asarray(merged)
    shape = merged.shape[:-1] + (2, merged.shape[-1])
    if out is None:
        out = np.empty(shape, dtype=np.uint64)
    np.right_shift(merged, _SH32, out=out[..., 0, :])
    np.bitwise_and(merged, _M32, out=out[..., 1, :])
    return out


def is_dword_stack(data: np.ndarray) -> bool:
    """True when an array is in dword digit-plane format.

    Stacks are 2-D (``(rows, N)``) on the single-word backends and 3-D
    (``(rows, 2, N)``) on the dword backend, so the rank is the format tag.
    """
    data = np.asarray(data)
    return data.ndim == 3 and data.shape[-2] == 2 and data.dtype != np.object_


def coerce_stack(data: np.ndarray, moduli_col: np.ndarray) -> np.ndarray:
    """Coerce a canonical stack into the backend format of ``moduli_col``.

    A no-op when the formats already agree.  Needed at regime boundaries:
    a sub-basis of a mixed chain (digit decomposition, rescale targets) can
    select a different backend than the parent stack.  Values must already
    be canonical residues, so every conversion is exact (dword planes merge
    into single lanes; single-word values below 2**62 split losslessly).
    """
    data = np.asarray(data)
    backend = stack_backend(moduli_col)
    dword = is_dword_stack(data)
    if backend == BACKEND_UINT64:
        if dword:
            return dword_merge(data)
        if data.dtype == np.object_:
            return data.astype(np.uint64)
        return data
    if backend == BACKEND_DWORD:
        if dword:
            return data
        if data.dtype == np.object_:
            return dword_split(data.astype(np.uint64))
        return dword_split(data)
    if dword:
        return _to_object_ints(dword_merge(data))
    if data.dtype != np.object_:
        return _to_object_ints(data)
    return data


def as_residue_stack(rows, moduli) -> np.ndarray:
    """Canonicalize per-limb residue rows into one stack array.

    Returns ``(L, N)`` on the single-word backends and ``(L, 2, N)`` digit
    planes on the dword backend.
    """
    moduli = [int(q) for q in moduli]
    if len(rows) != len(moduli):
        raise ValueError("row count does not match modulus count")
    canonical = [as_residue_array(np.asarray(row), q) for row, q in zip(rows, moduli)]
    backend = backend_for_moduli(moduli)
    if backend == BACKEND_UINT64:
        return np.stack(canonical)
    if backend == BACKEND_DWORD:
        merged = np.stack([
            row.astype(np.uint64) if row.dtype == np.object_ else row
            for row in canonical
        ])
        return dword_split(merged)
    return np.stack([object_row(c) for c in canonical])


def stack_zeros(num_limbs: int, n: int, moduli_col: np.ndarray) -> np.ndarray:
    """Return an all-zero stack in the backend's dtype and shape."""
    backend = stack_backend(moduli_col)
    if backend == BACKEND_UINT64:
        return np.zeros((num_limbs, n), dtype=np.uint64)
    if backend == BACKEND_DWORD:
        return np.zeros((num_limbs, 2, n), dtype=np.uint64)
    return np.full((num_limbs, n), 0, dtype=object)


def scalar_column(scalars, moduli_col: np.ndarray) -> np.ndarray:
    """Canonicalize one integer constant per limb into an ``(L, 1)`` column.

    On the dword backend the column holds *merged* uint64 values (every
    canonical residue below 2**62 fits one lane).
    """
    moduli = [int(q) for q in np.asarray(moduli_col).ravel()]
    if len(scalars) != len(moduli):
        raise ValueError("need one scalar per limb")
    values = [int(s) % q for s, q in zip(scalars, moduli)]
    dtype = np.object_ if stack_backend(moduli_col) == BACKEND_OBJECT else np.uint64
    return np.array(values, dtype=dtype).reshape(-1, 1)


#: Shift of the Shoup constant-operand multiplication on the fast backend:
#: with residues below 2**31 and ``w' = floor(w * 2**32 / q)``, every
#: intermediate fits a uint64 lane and the pre-reduction result lies in
#: ``[0, 2q)`` (Table III's one-wide-two-low-multiplications scheme).
STACK_SHOUP_SHIFT = np.uint64(32)


#: Byte budget of the shared kernel scratch pool (below).
_SCRATCH_BUDGET_BYTES = 96 << 20

#: Reusable temporaries for the stack kernels, keyed by (tag, dtype, shape)
#: with LRU eviction.  Fused (B·L, N) batches make the per-kernel
#: intermediates multi-megabyte; allocating them fresh per call costs a
#: page-fault zero-fill pass that can exceed the arithmetic itself, so the
#: kernels stage their *internal* temporaries here (results stay freshly
#: allocated -- scratch never escapes a kernel).  The dtype is part of the
#: key so double-word temporaries cannot collide with single-word uint64
#: buffers of the same (tag, shape).
_scratch_buffers: "OrderedDict[tuple, np.ndarray]" = OrderedDict()


def _scratch(tag: str, shape: tuple, dtype=np.uint64) -> np.ndarray:
    """Return a reusable buffer of exactly ``shape``/``dtype`` (LRU-bounded)."""
    dtype = np.dtype(dtype)
    key = (tag, dtype.str) + tuple(int(d) for d in shape)
    buf = _scratch_buffers.get(key)
    if buf is None:
        buf = np.empty(shape, dtype=dtype)
        _scratch_buffers[key] = buf
        total = sum(b.nbytes for b in _scratch_buffers.values())
        while total > _SCRATCH_BUDGET_BYTES and len(_scratch_buffers) > 1:
            oldest = next(iter(_scratch_buffers))
            if oldest == key:
                _scratch_buffers.move_to_end(oldest)
                oldest = next(iter(_scratch_buffers))
            total -= _scratch_buffers.pop(oldest).nbytes
    else:
        _scratch_buffers.move_to_end(key)
    return buf


def _fast_reduce_once(s: np.ndarray, moduli_col: np.ndarray) -> np.ndarray:
    """Map ``s`` in ``[0, 2q)`` to ``[0, q)`` without a branch or division.

    When ``s < q`` the uint64 subtraction ``s - q`` wraps far above ``2q``,
    so the elementwise minimum selects the already-reduced value; when
    ``s >= q`` it selects ``s - q``.  One subtract and one min replace the
    compare/where/subtract triple.  ``s`` must be a kernel-owned temporary:
    the reduction happens in place (the correction term lives in scratch).
    """
    tmp = _scratch("reduce", s.shape)
    np.subtract(s, moduli_col, out=tmp)
    np.minimum(s, tmp, out=s)
    return s


def shoup_column(constants: np.ndarray, moduli_col: np.ndarray) -> np.ndarray:
    """Precompute ``floor(c * 2**32 / q)`` companions for fast constants."""
    return (constants << STACK_SHOUP_SHIFT) // moduli_col


# -- double-word kernel internals -------------------------------------------
#
# All helpers below operate on *merged* uint64 lanes (see dword_merge) with
# per-row constants from :class:`_DWordTables`.  The 64x64 -> 128-bit
# products a >= 2**31 modulus needs are emulated with four 32-bit digit
# multiplications; variable x variable products reduce with the improved
# Barrett of Shivdikar et al. (quotient estimate off by at most two, so two
# branch-free min corrections), constant multiplies with 64-bit Shoup
# companions (estimate off by at most one).


@dataclass(frozen=True)
class _DWordTables:
    """Per-basis Barrett constants of the dword backend (broadcast columns).

    With ``n = bitlen(q)`` and ``mu = floor(2**(2n) / q)`` (at most n+1
    bits, so a uint64 for every supported modulus), the improved Barrett
    quotient of a product ``x < q**2`` is
    ``q_est = (floor(x / 2**(n-1)) * mu) >> (n+1)`` -- within 2 of the true
    quotient, leaving a remainder in ``[0, 3q)`` that fits a lane for
    ``q < 2**62``.
    """

    q: np.ndarray        # (L, 1) merged moduli
    q2: np.ndarray       # (L, 1) doubled moduli (lazy-representative bound)
    mu_hi: np.ndarray    # (L, 1) high/low 32-bit digits of mu
    mu_lo: np.ndarray
    s1: np.ndarray       # (L, 1) n-1   (t = x >> (n-1))
    s1c: np.ndarray      # (L, 1) 65-n  (complementary shift of the hi word)
    s2: np.ndarray       # (L, 1) n+1   (q_est = t*mu >> (n+1))
    s2c: np.ndarray      # (L, 1) 63-n


def _dword_tables(moduli_col: np.ndarray) -> _DWordTables:
    """Return the (cached) Barrett tables of a dword moduli column."""
    return _dword_tables_cached(
        tuple(int(q) for q in np.asarray(moduli_col).ravel())
    )


@lru_cache(maxsize=None)
def _dword_tables_cached(moduli: tuple) -> _DWordTables:
    def column(values) -> np.ndarray:
        arr = np.array(values, dtype=np.uint64).reshape(-1, 1)
        arr.flags.writeable = False
        return arr

    qs = [int(q) for q in moduli]
    if max(qs) >= DWORD_MODULUS_LIMIT:
        raise ValueError(
            f"modulus {max(qs)} (>= 2**62) exceeds the double-word backend"
        )
    bits = [q.bit_length() for q in qs]
    mu = [(1 << (2 * n)) // q for q, n in zip(qs, bits)]
    return _DWordTables(
        q=column(qs),
        q2=column([2 * q for q in qs]),
        mu_hi=column([m >> 32 for m in mu]),
        mu_lo=column([m & 0xFFFFFFFF for m in mu]),
        s1=column([n - 1 for n in bits]),
        s1c=column([65 - n for n in bits]),
        s2=column([n + 1 for n in bits]),
        s2c=column([63 - n for n in bits]),
    )


def dword_shoup_column(constants: np.ndarray, moduli_col: np.ndarray) -> np.ndarray:
    """Precompute ``floor(c * 2**64 / q)`` companions for merged constants.

    Exact object arithmetic (the quotients straddle 2**63); a setup-time
    cost paid once per cached table, never on the kernel hot path.
    """
    qs = np.array(
        [int(q) for q in np.asarray(moduli_col).ravel()], dtype=object
    ).reshape(np.asarray(moduli_col).shape)
    wide = _to_object_ints(np.asarray(constants)) << 64
    return (wide // qs).astype(np.uint64)


def _dword_mulhi(a: np.ndarray, b_hi: np.ndarray, b_lo: np.ndarray) -> np.ndarray:
    """High 64 bits of ``a * b`` from the 32-bit digits of ``b``."""
    a_lo = a & _M32
    a_hi = a >> _SH32
    lh = a_lo * b_hi
    hl = a_hi * b_lo
    cross = ((a_lo * b_lo) >> _SH32) + (lh & _M32) + (hl & _M32)
    return a_hi * b_hi + (lh >> _SH32) + (hl >> _SH32) + (cross >> _SH32)


def _dword_barrett(p_hi: np.ndarray, p_lo: np.ndarray,
                   dw: _DWordTables) -> np.ndarray:
    """Reduce 128-bit products ``p_hi:p_lo < q**2`` to canonical residues."""
    t = (p_hi << dw.s1c) | (p_lo >> dw.s1)
    tm_lo = t * (dw.mu_lo | (dw.mu_hi << _SH32))
    tm_hi = _dword_mulhi(t, dw.mu_hi, dw.mu_lo)
    q_est = (tm_hi << dw.s2c) | (tm_lo >> dw.s2)
    r = p_lo - q_est * dw.q  # wraps mod 2**64; the true remainder is < 3q
    np.minimum(r, r - dw.q2, out=r)
    np.minimum(r, r - dw.q, out=r)
    return r


def _dword_mul_merged(am: np.ndarray, bm: np.ndarray,
                      dw: _DWordTables) -> np.ndarray:
    """Canonical ``(am * bm) mod q`` for merged canonical operands."""
    a_lo = am & _M32
    a_hi = am >> _SH32
    b_lo = bm & _M32
    b_hi = bm >> _SH32
    ll = a_lo * b_lo
    lh = a_lo * b_hi
    hl = a_hi * b_lo
    cross = (ll >> _SH32) + (lh & _M32) + (hl & _M32)
    p_lo = ((cross & _M32) << _SH32) | (ll & _M32)
    p_hi = a_hi * b_hi + (lh >> _SH32) + (hl >> _SH32) + (cross >> _SH32)
    return _dword_barrett(p_hi, p_lo, dw)


def _dword_shoup_mul_merged(
    am: np.ndarray,
    constants: np.ndarray,
    shoup: np.ndarray,
    dw: _DWordTables,
    *,
    lazy: bool = False,
) -> np.ndarray:
    """Merged ``(am * constants) mod q`` via 64-bit Shoup companions.

    ``am`` may be any uint64 value (lazy ``[0, 2q)`` representatives
    included); the quotient estimate ``mulhi64(am, shoup)`` is at most one
    short of the true quotient, so the result lies in ``[0, 2q)`` --
    returned as-is when ``lazy``, corrected once otherwise.
    """
    q_est = _dword_mulhi(am, shoup >> _SH32, shoup & _M32)
    r = am * constants - q_est * dw.q  # both products wrap mod 2**64
    if lazy:
        return r
    np.minimum(r, r - dw.q, out=r)
    return r


def stack_shoup_mul(
    a: np.ndarray,
    constants: np.ndarray,
    shoup: np.ndarray,
    moduli_col: np.ndarray,
    *,
    lazy: bool = False,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Elementwise ``(a * constants) mod q`` via Shoup multiplication.

    ``constants``/``shoup`` broadcast against ``a``; all inputs uint64 with
    residues below 2**31 (the operand ``a`` may be a lazy representative up
    to ``2q < 2**32``).  Replaces the hardware division of ``%`` with two
    multiplications and a shift -- the same trade the GPU butterflies make
    (Table III).  With ``lazy=True`` the result is left in ``[0, 2q)``,
    saving the correction passes when the caller reduces later anyway.
    ``out`` may alias ``a`` (the quotient is read out of ``a`` first).

    On the dword backend ``a``/``out`` are digit-plane stacks while
    ``constants``/``shoup`` are *merged* values with 64-bit companions
    (:func:`dword_shoup_column`).
    """
    if stack_is_dword(moduli_col):
        dw = _dword_tables(moduli_col)
        r = _dword_shoup_mul_merged(
            dword_merge(a), constants, shoup, dw, lazy=lazy
        )
        return dword_split(r, out=out)
    shape = np.broadcast_shapes(a.shape, np.shape(shoup))
    quotient = _scratch("shoup-q", shape)
    np.multiply(a, shoup, out=quotient)
    quotient >>= STACK_SHOUP_SHIFT
    np.multiply(quotient, moduli_col, out=quotient)
    if out is None:
        r = a * constants
    else:
        np.multiply(a, constants, out=out)
        r = out
    r -= quotient
    if lazy:
        return r
    np.subtract(r, moduli_col, out=quotient)
    np.minimum(r, quotient, out=r)
    return r


def stack_add_mod(a: np.ndarray, b: np.ndarray, moduli_col: np.ndarray,
                  *, out: np.ndarray | None = None) -> np.ndarray:
    """Row-broadcast elementwise ``(a + b) mod q_i`` over a limb stack.

    ``out`` (which may alias ``a`` or ``b``) writes the result into an
    existing buffer -- the replay/fusion path's way of avoiding fresh
    allocations per kernel.
    """
    backend = stack_backend(moduli_col)
    if backend == BACKEND_UINT64:
        if out is None:
            s = a + b
        else:
            np.add(a, b, out=out)
            s = out
        out = _fast_reduce_once(s, moduli_col)
    elif backend == BACKEND_DWORD:
        dw = _dword_tables(moduli_col)
        s = dword_merge(a)
        s += dword_merge(b, out=_scratch("dw-add", s.shape))
        np.minimum(s, s - dw.q, out=s)
        out = dword_split(s, out=out)
    else:
        result = (a + b) % moduli_col
        if out is None:
            out = result
        else:
            out[...] = result
    if _DISPATCH.recording:
        replay = None
        if _DISPATCH.executable_recording:
            def replay(reads, writes, _col=moduli_col):
                stack_add_mod(reads[0], reads[1], _col, out=writes[0])
        _DISPATCH.elementwise(
            "stack-add", reads=(a, b), writes=(out,),
            ops_per_element=_kernelforms.MODADD_OPS, replay=replay,
        )
    return out


def stack_sub_mod(a: np.ndarray, b: np.ndarray, moduli_col: np.ndarray,
                  *, out: np.ndarray | None = None) -> np.ndarray:
    """Row-broadcast elementwise ``(a - b) mod q_i`` over a limb stack."""
    backend = stack_backend(moduli_col)
    if backend == BACKEND_UINT64:
        if out is None:
            s = a + moduli_col
            s -= b
        else:
            # a - b first, then + q: safe when ``out`` aliases either
            # operand (uint64 wraparound makes the order immaterial).
            np.subtract(a, b, out=out)
            out += moduli_col
            s = out
        out = _fast_reduce_once(s, moduli_col)
    elif backend == BACKEND_DWORD:
        dw = _dword_tables(moduli_col)
        s = dword_merge(a)
        s += dw.q
        s -= dword_merge(b, out=_scratch("dw-sub", s.shape))
        np.minimum(s, s - dw.q, out=s)
        out = dword_split(s, out=out)
    else:
        result = (a - b) % moduli_col
        if out is None:
            out = result
        else:
            out[...] = result
    if _DISPATCH.recording:
        replay = None
        if _DISPATCH.executable_recording:
            def replay(reads, writes, _col=moduli_col):
                stack_sub_mod(reads[0], reads[1], _col, out=writes[0])
        _DISPATCH.elementwise(
            "stack-sub", reads=(a, b), writes=(out,),
            ops_per_element=_kernelforms.MODADD_OPS, replay=replay,
        )
    return out


def stack_neg_mod(a: np.ndarray, moduli_col: np.ndarray,
                  *, out: np.ndarray | None = None) -> np.ndarray:
    """Row-broadcast elementwise ``(-a) mod q_i`` over a limb stack."""
    backend = stack_backend(moduli_col)
    if backend == BACKEND_UINT64:
        result = np.where(a == 0, a, moduli_col - a)
    elif backend == BACKEND_DWORD:
        dw = _dword_tables(moduli_col)
        m = dword_merge(a)
        result = dword_split(np.where(m == 0, m, dw.q - m))
    else:
        result = (-a) % moduli_col
    if out is None:
        out = result
    else:
        out[...] = result
    if _DISPATCH.recording:
        replay = None
        if _DISPATCH.executable_recording:
            def replay(reads, writes, _col=moduli_col):
                stack_neg_mod(reads[0], _col, out=writes[0])
        _DISPATCH.elementwise("stack-neg", reads=(a,), writes=(out,),
                              ops_per_element=1.0, replay=replay)
    return out


def stack_mul_mod(a: np.ndarray, b: np.ndarray, moduli_col: np.ndarray,
                  *, out: np.ndarray | None = None) -> np.ndarray:
    """Row-broadcast elementwise ``(a * b) mod q_i`` over a limb stack.

    Exact on the fast backend because residues are below ``2**31``, so a
    product fits in a uint64 lane.  Both operands are variable, so the
    fast backend keeps a hardware division (Barrett-style constant tricks
    need a fixed operand) while the dword backend reduces the emulated
    128-bit product with improved Barrett.
    """
    if stack_is_dword(moduli_col):
        out = dword_split(
            _dword_mul_merged(dword_merge(a), dword_merge(b),
                              _dword_tables(moduli_col)),
            out=out,
        )
    elif stack_backend(moduli_col) == BACKEND_UINT64:
        if out is None:
            s = a * b
        else:
            np.multiply(a, b, out=out)
            s = out
        s %= moduli_col
        out = s
    else:
        result = (a * b) % moduli_col
        if out is None:
            out = result
        else:
            out[...] = result
    if _DISPATCH.recording:
        replay = None
        if _DISPATCH.executable_recording:
            def replay(reads, writes, _col=moduli_col):
                stack_mul_mod(reads[0], reads[1], _col, out=writes[0])
        _DISPATCH.elementwise(
            "stack-mul", reads=(a, b), writes=(out,),
            ops_per_element=_kernelforms.MODMUL_OPS, replay=replay,
        )
    return out


def stack_dot_mod(pairs, moduli_col: np.ndarray,
                  *, out: np.ndarray | None = None) -> np.ndarray:
    """Fused ``(Σ x_i * y_i) mod q`` over canonical stacks (§III-F.5).

    The dot-product fusion of the paper's key-switching inner loop: on the
    fast backend raw uint64 products are accumulated and reduced once per
    four terms -- ``4·(q-1)² < 2**64`` for ``q < 2**31``, so the wide
    accumulator cannot overflow -- instead of reducing after every
    multiply-add.
    """
    pairs = list(pairs)
    if not pairs:
        raise ValueError("stack_dot_mod needs at least one product")
    backend = stack_backend(moduli_col)
    if backend == BACKEND_UINT64:
        acc = None
        product = None
        pending = 0
        for x, y in pairs:
            if acc is None:
                if out is None:
                    acc = x * y  # fresh: this array is the returned result
                else:
                    np.multiply(x, y, out=out)
                    acc = out
            else:
                if product is None:
                    product = _scratch("dot-prod", acc.shape)
                np.multiply(x, y, out=product)
                acc += product
            pending += 1
            if pending == 4:
                acc %= moduli_col
                pending = 0
        acc %= moduli_col
    elif backend == BACKEND_DWORD:
        # Near 2**62 even a 128-bit accumulator could overflow after a few
        # terms, so each emulated product is Barrett-reduced and folded in
        # with a canonical modular add (one extra min per term).
        dw = _dword_tables(moduli_col)
        acc = None
        for x, y in pairs:
            term = _dword_mul_merged(dword_merge(x), dword_merge(y), dw)
            if acc is None:
                acc = term
            else:
                acc += term
                np.minimum(acc, acc - dw.q, out=acc)
        acc = dword_split(acc, out=out)
    else:
        acc = None
        for x, y in pairs:
            product = (x * y) % moduli_col
            acc = product if acc is None else (acc + product) % moduli_col
        if out is not None:
            out[...] = acc
            acc = out
    if _DISPATCH.recording:
        replay = None
        if _DISPATCH.executable_recording:
            def replay(reads, writes, _col=moduli_col):
                stack_dot_mod(
                    list(zip(reads[0::2], reads[1::2])), _col, out=writes[0]
                )
        _DISPATCH.elementwise(
            "stack-dot",
            reads=tuple(operand for pair in pairs for operand in pair),
            writes=(acc,),
            ops_per_element=len(pairs) * (_kernelforms.MODMUL_OPS + _kernelforms.MODADD_OPS),
            replay=replay,
        )
    return acc


def stack_scalar_mod(a: np.ndarray, scalars, moduli_col: np.ndarray,
                     *, out: np.ndarray | None = None) -> np.ndarray:
    """Multiply every row by its own integer constant modulo its prime.

    ``out`` (which may alias ``a``) lets owners of the input reuse its
    storage -- e.g. the stacked iNTT's fused ``N^{-1}`` scaling writes
    straight into the transform's working buffer.
    """
    col = scalar_column(scalars, moduli_col)
    backend = stack_backend(moduli_col)
    if backend == BACKEND_UINT64:
        out = stack_shoup_mul(a, col, shoup_column(col, moduli_col), moduli_col,
                              out=out)
    elif backend == BACKEND_DWORD:
        out = stack_shoup_mul(a, col, _dword_scalar_shoup(scalars, moduli_col),
                              moduli_col, out=out)
    else:
        result = (a * col) % moduli_col
        if out is None:
            out = result
        else:
            out[...] = result
    if _DISPATCH.recording:
        replay = None
        if _DISPATCH.executable_recording:
            frozen = tuple(int(s) for s in scalars)
            def replay(reads, writes, _scalars=frozen, _col=moduli_col):
                stack_scalar_mod(reads[0], _scalars, _col, out=writes[0])
        _DISPATCH.elementwise(
            "stack-scalar-mul", reads=(a, col), writes=(out,),
            ops_per_element=_kernelforms.SHOUP_MUL_OPS, replay=replay,
        )
    return out


def _dword_scalar_shoup(scalars, moduli_col: np.ndarray) -> np.ndarray:
    """Cached 64-bit Shoup companions of a per-row scalar column."""
    return _dword_scalar_shoup_cached(
        tuple(int(s) for s in scalars),
        tuple(int(q) for q in np.asarray(moduli_col).ravel()),
    )


@lru_cache(maxsize=512)
def _dword_scalar_shoup_cached(scalars: tuple, moduli: tuple) -> np.ndarray:
    values = [s % q for s, q in zip(scalars, moduli)]
    out = np.array(
        [(v << 64) // q for v, q in zip(values, moduli)], dtype=np.uint64
    ).reshape(-1, 1)
    out.flags.writeable = False
    return out


def stack_add_scalar_mod(a: np.ndarray, scalars, moduli_col: np.ndarray,
                         *, out: np.ndarray | None = None) -> np.ndarray:
    """Add one integer constant per row (broadcast to every element)."""
    col = scalar_column(scalars, moduli_col)
    backend = stack_backend(moduli_col)
    if backend == BACKEND_UINT64:
        if out is None:
            s = a + col
        else:
            np.add(a, col, out=out)
            s = out
        out = _fast_reduce_once(s, moduli_col)
    elif backend == BACKEND_DWORD:
        dw = _dword_tables(moduli_col)
        s = dword_merge(a)
        s += col
        np.minimum(s, s - dw.q, out=s)
        out = dword_split(s, out=out)
    else:
        result = (a + col) % moduli_col
        if out is None:
            out = result
        else:
            out[...] = result
    if _DISPATCH.recording:
        replay = None
        if _DISPATCH.executable_recording:
            frozen = tuple(int(s) for s in scalars)
            def replay(reads, writes, _scalars=frozen, _col=moduli_col):
                stack_add_scalar_mod(reads[0], _scalars, _col, out=writes[0])
        _DISPATCH.elementwise(
            "stack-scalar-add", reads=(a, col), writes=(out,),
            ops_per_element=_kernelforms.MODADD_OPS, replay=replay,
        )
    return out


def stack_switch_modulus(row: np.ndarray, q_from: int, moduli_col: np.ndarray) -> np.ndarray:
    """Re-reduce one residue row (mod ``q_from``) into every stack modulus.

    The batched form of :func:`vec_switch_modulus`: residues are interpreted
    in the centred interval ``(-q_from/2, q_from/2]`` and reduced against
    each row modulus at once, producing an ``(L, N)`` stack (``(L, 2, N)``
    digit planes on the dword backend; a dword ``row`` arrives as its
    ``(2, N)`` planes).

    Exact int64 arithmetic covers every modulus below 2**62: the centred
    values have magnitude at most ``q_from/2 < 2**61`` and NumPy's ``%``
    follows Python's floored semantics, so no object fallback is needed
    until the exact backend itself.
    """
    half = q_from >> 1
    backend = stack_backend(moduli_col)
    row = np.asarray(row)
    # A single row is 1-D on the single-word backends and arrives as its
    # (2, N) digit planes from a dword-format parent stack -- even when
    # q_from itself is small (mixed chains store every row as planes).
    row_is_dword = (
        row.ndim == 2 and row.shape[0] == 2 and row.dtype != np.object_
    )
    if backend != BACKEND_OBJECT and q_from < DWORD_MODULUS_LIMIT:
        merged = dword_merge(row) if row_is_dword else row
        v = merged.astype(np.int64)
        centred = np.where(v > half, v - q_from, v)
        out = centred[None, :] % np.asarray(moduli_col).astype(np.int64)
        out = out.astype(np.uint64)
        if backend == BACKEND_DWORD:
            out = dword_split(out)
    else:
        values = object_row(
            dword_merge(row).ravel() if row_is_dword else row.ravel()
        )
        centred = np.where(values > half, values - q_from, values)
        out = centred[None, :] % np.array(
            [int(q) for q in np.asarray(moduli_col).ravel()], dtype=object
        ).reshape(-1, 1)
        out = coerce_stack(out, moduli_col)
    if _DISPATCH.recording:
        replay = None
        if _DISPATCH.executable_recording:
            def replay(reads, writes, _q=q_from, _col=moduli_col):
                writes[0][...] = stack_switch_modulus(reads[0], _q, _col)
        _DISPATCH.elementwise(
            "stack-switch-modulus", reads=(row,), writes=(out,),
            ops_per_element=_kernelforms.MODADD_OPS, replay=replay,
        )
    return out


def stack_switch_modulus_many(rows: np.ndarray, q_from: int,
                              moduli_col: np.ndarray,
                              *, out: np.ndarray | None = None) -> np.ndarray:
    """Batched :func:`stack_switch_modulus` over ``P`` residue rows at once.

    ``rows`` holds ``P`` rows mod ``q_from`` (``(P, N)`` single-word,
    ``(P, 2, N)`` dword planes); the result stacks each row's switch into
    the ``keep`` target moduli contiguously -- ``(P*keep, N)`` (or
    ``(P*keep, 2, N)``) with row block ``p`` covering ``rows[p]``.  This is
    the layout the batched rescale tail consumes directly, replacing the
    per-row python loop + ``vstack`` staging copy of the unbatched path.
    Row ``p*keep + i`` is bit-identical to
    ``stack_switch_modulus(rows[p], q_from, moduli_col)[i]``.
    """
    rows = np.asarray(rows)
    half = q_from >> 1
    backend = stack_backend(moduli_col)
    keep = int(np.asarray(moduli_col).size)
    rows_are_dword = is_dword_stack(rows)
    count = int(rows.shape[0])
    if backend != BACKEND_OBJECT and q_from < DWORD_MODULUS_LIMIT:
        merged = dword_merge(rows) if rows_are_dword else rows
        v = merged.astype(np.int64)
        centred = np.where(v > half, v - q_from, v)
        cols = np.asarray(moduli_col).astype(np.int64).reshape(1, keep, 1)
        switched = (centred[:, None, :] % cols).astype(np.uint64)
        switched = switched.reshape(count * keep, -1)
        if backend == BACKEND_DWORD:
            result = dword_split(switched, out=out)
        elif out is None:
            result = switched
        else:
            np.copyto(out, switched)
            result = out
    else:
        blocks = [
            stack_switch_modulus(rows[p], q_from, moduli_col)
            for p in range(count)
        ]
        if out is None:
            result = np.concatenate(blocks, axis=0)
        else:
            np.concatenate(blocks, axis=0, out=out)
            result = out
    return result


__all__ = [
    "FAST_MODULUS_LIMIT",
    "DWORD_MODULUS_LIMIT",
    "WORD_BITS",
    "BarrettReducer",
    "MontgomeryReducer",
    "ShoupMultiplier",
    "add_mod",
    "sub_mod",
    "neg_mod",
    "mul_mod",
    "pow_mod",
    "inv_mod",
    "bit_length",
    "dtype_for_modulus",
    "is_fast_modulus",
    "as_residue_array",
    "zeros",
    "vec_add_mod",
    "vec_sub_mod",
    "vec_neg_mod",
    "vec_mul_mod",
    "vec_mul_scalar_mod",
    "vec_to_int_list",
    "vec_switch_modulus",
    "all_fast_moduli",
    "backend_for_moduli",
    "BACKEND_UINT64",
    "BACKEND_DWORD",
    "BACKEND_OBJECT",
    "moduli_column",
    "stack_backend",
    "stack_is_fast",
    "stack_is_dword",
    "dword_merge",
    "dword_split",
    "is_dword_stack",
    "dword_shoup_column",
    "object_row",
    "coerce_stack",
    "as_residue_stack",
    "stack_zeros",
    "scalar_column",
    "STACK_SHOUP_SHIFT",
    "shoup_column",
    "stack_shoup_mul",
    "stack_add_mod",
    "stack_sub_mod",
    "stack_neg_mod",
    "stack_mul_mod",
    "stack_dot_mod",
    "stack_scalar_mod",
    "stack_add_scalar_mod",
    "stack_switch_modulus",
    "stack_switch_modulus_many",
]
