"""Modular arithmetic primitives for word-sized prime moduli.

The CKKS scheme performs all polynomial arithmetic modulo a set of primes
``{q_0, ..., q_L}``.  Because GPUs (and CPUs) have no native modulo unit,
FIDESlib relies on the fast reduction techniques compared in Table III of
the paper:

* **Barrett reduction / multiplication** (the "improved Barrett" of
  Shivdikar et al. [50]) -- reduction by two multiplications using a
  precomputed reciprocal of the modulus.  FIDESlib uses Barrett as its
  general-purpose reduction because it needs no special operand encoding.
* **Montgomery reduction / multiplication** -- the same multiplication
  count, but operands must live in Montgomery form.
* **Shoup multiplication** -- the cheapest option when one operand is a
  known constant (twiddle factors, precomputed scalars); the constant's
  reciprocal is precomputed.

This module provides faithful scalar implementations of all three (used by
the NTT engine and exercised directly by the unit tests and the Table III
micro-benchmark) plus vectorised NumPy routines used by the bulk of the
library.  Two array backends are supported:

* a **fast backend** for moduli below 2**31, where a product of two
  residues fits in an unsigned 64-bit lane and NumPy's native ``%`` is
  exact; and
* an **exact backend** backed by Python integers (``dtype=object``) for
  word-sized moduli such as the paper's 59-bit primes.

The backend is chosen per modulus by :func:`dtype_for_modulus`; all public
vector routines accept either representation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.dispatch import get_dispatcher
from repro.gpu import kernel as _kernelforms

#: Execution-plane dispatcher; every batched stack kernel reports through
#: it so recorded traces reflect what actually executed (a no-op unless a
#: trace is being recorded).
_DISPATCH = get_dispatcher()

#: Largest modulus for which the fast uint64 NumPy backend is exact:
#: residues are < 2**31, so products are < 2**62 and fit in a uint64 lane.
FAST_MODULUS_LIMIT = 1 << 31

#: Machine word size assumed by the Montgomery/Shoup precomputations.
WORD_BITS = 64
WORD_BASE = 1 << WORD_BITS


# ---------------------------------------------------------------------------
# Scalar helpers
# ---------------------------------------------------------------------------


def add_mod(a: int, b: int, q: int) -> int:
    """Return ``(a + b) mod q`` for residues ``a, b`` in ``[0, q)``.

    The sum lies in ``[0, 2q)`` so a single conditional subtraction brings
    it back into range, exactly as the paper describes for modular
    addition on the GPU.
    """
    s = a + b
    if s >= q:
        s -= q
    return s


def sub_mod(a: int, b: int, q: int) -> int:
    """Return ``(a - b) mod q`` for residues in ``[0, q)``."""
    d = a - b
    if d < 0:
        d += q
    return d


def neg_mod(a: int, q: int) -> int:
    """Return ``(-a) mod q``."""
    return 0 if a == 0 else q - a


def mul_mod(a: int, b: int, q: int) -> int:
    """Return ``(a * b) mod q`` using Python's arbitrary precision."""
    return (a * b) % q


def pow_mod(base: int, exponent: int, q: int) -> int:
    """Return ``base ** exponent mod q``."""
    return pow(base, exponent, q)


def inv_mod(a: int, q: int) -> int:
    """Return the multiplicative inverse of ``a`` modulo ``q``.

    Raises :class:`ZeroDivisionError` if ``a`` is not invertible.
    """
    return pow(a, -1, q)


def bit_length(x: int) -> int:
    """Return the bit length of ``x`` (0 for 0)."""
    return int(x).bit_length()


# ---------------------------------------------------------------------------
# Barrett reduction (improved Barrett, Table III)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BarrettReducer:
    """Barrett modular reduction for a fixed modulus ``q``.

    Precomputes ``mu = floor(2**(2k) / q)`` where ``k = bitlen(q)``.  The
    :meth:`reduce` method accepts any value below ``q**2`` (the range of a
    residue product) and returns the canonical residue.  Following the
    improved Barrett formulation, the quotient estimate is off by at most
    one, so a single correction step suffices; the paper notes the output
    naturally falls in ``[0, 2q)`` before that final correction.
    """

    modulus: int
    shift: int
    mu: int

    @classmethod
    def create(cls, modulus: int) -> "BarrettReducer":
        if modulus < 2:
            raise ValueError(f"Barrett modulus must be >= 2, got {modulus}")
        k = bit_length(modulus)
        shift = 2 * k
        mu = (1 << shift) // modulus
        return cls(modulus=modulus, shift=shift, mu=mu)

    def reduce(self, x: int) -> int:
        """Reduce ``x`` (``0 <= x < q**2``) modulo ``q``."""
        q = self.modulus
        estimate = (x * self.mu) >> self.shift
        r = x - estimate * q
        # The estimate underestimates the true quotient by at most one.
        if r >= q:
            r -= q
        return r

    def mul(self, a: int, b: int) -> int:
        """Return ``(a * b) mod q`` via Barrett reduction of the product."""
        return self.reduce(a * b)

    def multiplication_count(self) -> dict:
        """Return the wide/low multiplication counts of Table III."""
        return {"wide": 2, "low": 1}


# ---------------------------------------------------------------------------
# Montgomery reduction (Table III)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MontgomeryReducer:
    """Montgomery modular arithmetic with ``R = 2**64``.

    Values are mapped into Montgomery form ``aR mod q`` with
    :meth:`to_montgomery`; :meth:`mul` multiplies two Montgomery-form
    values and returns a Montgomery-form result; :meth:`from_montgomery`
    converts back.  This mirrors the Table III observation that Montgomery
    multiplication matches Barrett's cost but requires operands in a
    special encoding -- the reason FIDESlib prefers Barrett for general
    use.
    """

    modulus: int
    r_bits: int
    r_mask: int
    q_inv_neg: int
    r2: int

    @classmethod
    def create(cls, modulus: int, r_bits: int = WORD_BITS) -> "MontgomeryReducer":
        if modulus % 2 == 0:
            raise ValueError("Montgomery reduction requires an odd modulus")
        r = 1 << r_bits
        q_inv = inv_mod(modulus, r)
        q_inv_neg = (-q_inv) % r
        r2 = (r * r) % modulus
        return cls(
            modulus=modulus,
            r_bits=r_bits,
            r_mask=r - 1,
            q_inv_neg=q_inv_neg,
            r2=r2,
        )

    def reduce(self, x: int) -> int:
        """Montgomery-reduce ``x < q * R``: returns ``x * R^-1 mod q``."""
        q = self.modulus
        m = ((x & self.r_mask) * self.q_inv_neg) & self.r_mask
        t = (x + m * q) >> self.r_bits
        if t >= q:
            t -= q
        return t

    def to_montgomery(self, a: int) -> int:
        """Map ``a`` to Montgomery form ``a * R mod q``."""
        return self.reduce(a * self.r2)

    def from_montgomery(self, a_mont: int) -> int:
        """Map a Montgomery-form value back to the canonical residue."""
        return self.reduce(a_mont)

    def mul(self, a_mont: int, b_mont: int) -> int:
        """Multiply two Montgomery-form residues (result in Montgomery form)."""
        return self.reduce(a_mont * b_mont)

    def mul_plain(self, a: int, b: int) -> int:
        """Multiply two canonical residues, handling the form conversions."""
        return self.from_montgomery(
            self.mul(self.to_montgomery(a), self.to_montgomery(b))
        )

    def multiplication_count(self) -> dict:
        """Return the wide/low multiplication counts of Table III."""
        return {"wide": 2, "low": 1}


# ---------------------------------------------------------------------------
# Shoup multiplication (Table III)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShoupMultiplier:
    """Shoup modular multiplication by a fixed constant ``b``.

    Precomputes ``b_shoup = floor(b * 2**64 / q)``.  Multiplying an
    arbitrary residue ``a`` by the constant then costs one wide and two low
    multiplications (Table III).  FIDESlib uses Shoup multiplication for
    the NTT twiddle factors and other precomputed constants.
    """

    modulus: int
    operand: int
    precomputed: int
    shift: int

    @classmethod
    def create(cls, operand: int, modulus: int, shift: int = WORD_BITS) -> "ShoupMultiplier":
        if not 0 <= operand < modulus:
            raise ValueError("Shoup operand must be a canonical residue")
        precomputed = (operand << shift) // modulus
        return cls(modulus=modulus, operand=operand, precomputed=precomputed, shift=shift)

    def mul(self, a: int) -> int:
        """Return ``(a * operand) mod q`` in ``[0, q)``."""
        q = self.modulus
        quotient = (a * self.precomputed) >> self.shift
        r = (a * self.operand - quotient * q) % (1 << self.shift)
        if r >= q:
            r -= q
        return r

    def multiplication_count(self) -> dict:
        """Return the wide/low multiplication counts of Table III."""
        return {"wide": 1, "low": 2}


# ---------------------------------------------------------------------------
# Vectorised routines
# ---------------------------------------------------------------------------


def dtype_for_modulus(q: int):
    """Return the NumPy dtype used to store residues modulo ``q``.

    Moduli below :data:`FAST_MODULUS_LIMIT` use the fast ``uint64`` path;
    larger (e.g. 59-bit) moduli fall back to exact Python integers stored
    in an ``object`` array.
    """
    return np.uint64 if q < FAST_MODULUS_LIMIT else np.object_


def is_fast_modulus(q: int) -> bool:
    """Return True when the fast uint64 backend is exact for modulus ``q``."""
    return q < FAST_MODULUS_LIMIT


def as_residue_array(values, q: int) -> np.ndarray:
    """Coerce ``values`` into a canonical residue array for modulus ``q``."""
    if is_fast_modulus(q):
        arr = np.asarray(values)
        if arr.dtype == np.object_:
            arr = np.array([int(v) % q for v in arr.ravel()], dtype=np.uint64).reshape(arr.shape)
            return arr
        arr = arr.astype(np.int64, copy=True)
        arr %= q
        return arr.astype(np.uint64)
    flat = [int(v) % q for v in np.asarray(values, dtype=object).ravel()]
    out = np.array(flat, dtype=object)
    return out.reshape(np.asarray(values, dtype=object).shape)


def zeros(n: int, q: int) -> np.ndarray:
    """Return an all-zero residue array of length ``n`` for modulus ``q``."""
    if is_fast_modulus(q):
        return np.zeros(n, dtype=np.uint64)
    return np.array([0] * n, dtype=object)


def vec_add_mod(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """Elementwise ``(a + b) mod q``."""
    if is_fast_modulus(q):
        s = a + b
        return np.where(s >= q, s - np.uint64(q), s)
    return (a + b) % q


def vec_sub_mod(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """Elementwise ``(a - b) mod q``."""
    if is_fast_modulus(q):
        s = a + np.uint64(q) - b
        return np.where(s >= q, s - np.uint64(q), s)
    return (a - b) % q


def vec_neg_mod(a: np.ndarray, q: int) -> np.ndarray:
    """Elementwise ``(-a) mod q``."""
    if is_fast_modulus(q):
        return np.where(a == 0, a, np.uint64(q) - a)
    return (-a) % q


def vec_mul_mod(a: np.ndarray, b, q: int) -> np.ndarray:
    """Elementwise ``(a * b) mod q``; ``b`` may be an array or a scalar."""
    if is_fast_modulus(q):
        if np.isscalar(b) or isinstance(b, (int, np.integer)):
            b = np.uint64(int(b) % q)
        return (a * b) % np.uint64(q)
    if np.isscalar(b) or isinstance(b, (int, np.integer)):
        b = int(b) % q
    return (a * b) % q


def vec_mul_scalar_mod(a: np.ndarray, scalar: int, q: int) -> np.ndarray:
    """Elementwise multiplication by a scalar constant modulo ``q``."""
    return vec_mul_mod(a, scalar % q, q)


def vec_to_int_list(a: np.ndarray) -> list:
    """Return the residues of ``a`` as a list of Python ints."""
    return [int(x) for x in np.asarray(a).ravel()]


def vec_switch_modulus(a: np.ndarray, q_from: int, q_to: int) -> np.ndarray:
    """Re-reduce residues of ``a`` (mod ``q_from``) into modulus ``q_to``.

    Residues are interpreted in the centred interval
    ``(-q_from/2, q_from/2]`` before reduction, which is the convention the
    base-conversion and mod-raise steps require to keep the underlying
    signed value intact.
    """
    values = np.array([int(x) for x in np.asarray(a).ravel()], dtype=object)
    half = q_from >> 1
    centred = np.where(values > half, values - q_from, values)
    reduced = [int(v) % q_to for v in centred]
    out = np.array(reduced, dtype=object).reshape(np.asarray(a).shape)
    return as_residue_array(out, q_to)


# ---------------------------------------------------------------------------
# Batched limb-stack routines
# ---------------------------------------------------------------------------
#
# The kernels below operate on a flat ``(num_limbs, N)`` residue stack -- the
# flattened allocation strategy of §III-D -- with the per-limb moduli held in
# an ``(L, 1)`` column that NumPy broadcasts across every row.  One call
# replaces a Python loop over per-limb vector routines, which is the batching
# the paper's §III-F kernels perform across limbs on the GPU.  The fast
# (uint64) backend is used only when *every* modulus in the stack is below
# :data:`FAST_MODULUS_LIMIT`; otherwise the stack falls back to exact Python
# integers in an object array.

#: Elementwise ``int()`` over an array; the safe way to turn a uint64 array
#: into Python-integer objects (``astype(object)`` would keep ``np.uint64``
#: elements whose arithmetic silently wraps or degrades to float).
_to_object_ints = np.frompyfunc(int, 1, 1)


def all_fast_moduli(moduli) -> bool:
    """Return True when every modulus can use the fast uint64 backend."""
    return all(is_fast_modulus(int(q)) for q in moduli)


def moduli_column(moduli) -> np.ndarray:
    """Return the ``(L, 1)`` broadcastable column of stack moduli.

    The column dtype selects the backend for the whole stack: ``uint64``
    when every modulus is fast, ``object`` (exact Python integers)
    otherwise.  Columns are cached per moduli tuple -- every polynomial at
    the same level shares one (hot-path constructor cost).
    """
    return _moduli_column_cached(tuple(int(q) for q in moduli))


@lru_cache(maxsize=None)
def _moduli_column_cached(moduli: tuple) -> np.ndarray:
    dtype = np.uint64 if all_fast_moduli(moduli) else np.object_
    column = np.array(moduli, dtype=dtype).reshape(-1, 1)
    # The column is shared by every stack and engine built over this
    # basis; freeze it so an accidental in-place write fails loudly
    # instead of corrupting the cache.
    column.flags.writeable = False
    return column


def stack_is_fast(moduli_col: np.ndarray) -> bool:
    """Return True when a moduli column selects the fast uint64 backend."""
    return moduli_col.dtype != np.object_


def object_row(values) -> np.ndarray:
    """Return a 1-D object array of Python ints (exact arithmetic)."""
    arr = np.asarray(values)
    if arr.dtype == np.object_:
        return arr
    return _to_object_ints(arr)


def coerce_stack(data: np.ndarray, moduli_col: np.ndarray) -> np.ndarray:
    """Coerce a canonical stack into the backend dtype of ``moduli_col``.

    A no-op when the dtypes already agree.  Needed at regime boundaries:
    a sub-basis of a mixed chain (digit decomposition, rescale targets) can
    be all-fast while the parent stack is exact-object, or vice versa.
    Values must already be canonical residues, so the conversion is exact.
    """
    data = np.asarray(data)
    if stack_is_fast(moduli_col):
        if data.dtype == np.object_:
            return data.astype(np.uint64)
        return data
    if data.dtype != np.object_:
        return _to_object_ints(data)
    return data


def as_residue_stack(rows, moduli) -> np.ndarray:
    """Canonicalize per-limb residue rows into one ``(L, N)`` stack array."""
    moduli = [int(q) for q in moduli]
    if len(rows) != len(moduli):
        raise ValueError("row count does not match modulus count")
    canonical = [as_residue_array(np.asarray(row), q) for row, q in zip(rows, moduli)]
    if all_fast_moduli(moduli):
        return np.stack(canonical)
    return np.stack([object_row(c) for c in canonical])


def stack_zeros(num_limbs: int, n: int, moduli_col: np.ndarray) -> np.ndarray:
    """Return an all-zero ``(num_limbs, n)`` stack in the backend's dtype."""
    if stack_is_fast(moduli_col):
        return np.zeros((num_limbs, n), dtype=np.uint64)
    return np.full((num_limbs, n), 0, dtype=object)


def scalar_column(scalars, moduli_col: np.ndarray) -> np.ndarray:
    """Canonicalize one integer constant per limb into an ``(L, 1)`` column."""
    moduli = [int(q) for q in moduli_col.ravel()]
    if len(scalars) != len(moduli):
        raise ValueError("need one scalar per limb")
    values = [int(s) % q for s, q in zip(scalars, moduli)]
    dtype = np.uint64 if stack_is_fast(moduli_col) else np.object_
    return np.array(values, dtype=dtype).reshape(-1, 1)


#: Shift of the Shoup constant-operand multiplication on the fast backend:
#: with residues below 2**31 and ``w' = floor(w * 2**32 / q)``, every
#: intermediate fits a uint64 lane and the pre-reduction result lies in
#: ``[0, 2q)`` (Table III's one-wide-two-low-multiplications scheme).
STACK_SHOUP_SHIFT = np.uint64(32)


#: Byte budget of the shared kernel scratch pool (below).
_SCRATCH_BUDGET_BYTES = 96 << 20

#: Reusable uint64 temporaries for the stack kernels, keyed by (tag, shape)
#: with LRU eviction.  Fused (B·L, N) batches make the per-kernel
#: intermediates multi-megabyte; allocating them fresh per call costs a
#: page-fault zero-fill pass that can exceed the arithmetic itself, so the
#: kernels stage their *internal* temporaries here (results stay freshly
#: allocated -- scratch never escapes a kernel).
_scratch_buffers: "OrderedDict[tuple, np.ndarray]" = OrderedDict()


def _scratch(tag: str, shape: tuple) -> np.ndarray:
    """Return a reusable uint64 buffer of exactly ``shape`` (LRU-bounded)."""
    key = (tag,) + tuple(int(d) for d in shape)
    buf = _scratch_buffers.get(key)
    if buf is None:
        buf = np.empty(shape, dtype=np.uint64)
        _scratch_buffers[key] = buf
        total = sum(b.nbytes for b in _scratch_buffers.values())
        while total > _SCRATCH_BUDGET_BYTES and len(_scratch_buffers) > 1:
            oldest = next(iter(_scratch_buffers))
            if oldest == key:
                _scratch_buffers.move_to_end(oldest)
                oldest = next(iter(_scratch_buffers))
            total -= _scratch_buffers.pop(oldest).nbytes
    else:
        _scratch_buffers.move_to_end(key)
    return buf


def _fast_reduce_once(s: np.ndarray, moduli_col: np.ndarray) -> np.ndarray:
    """Map ``s`` in ``[0, 2q)`` to ``[0, q)`` without a branch or division.

    When ``s < q`` the uint64 subtraction ``s - q`` wraps far above ``2q``,
    so the elementwise minimum selects the already-reduced value; when
    ``s >= q`` it selects ``s - q``.  One subtract and one min replace the
    compare/where/subtract triple.  ``s`` must be a kernel-owned temporary:
    the reduction happens in place (the correction term lives in scratch).
    """
    tmp = _scratch("reduce", s.shape)
    np.subtract(s, moduli_col, out=tmp)
    np.minimum(s, tmp, out=s)
    return s


def shoup_column(constants: np.ndarray, moduli_col: np.ndarray) -> np.ndarray:
    """Precompute ``floor(c * 2**32 / q)`` companions for fast constants."""
    return (constants << STACK_SHOUP_SHIFT) // moduli_col


def stack_shoup_mul(
    a: np.ndarray,
    constants: np.ndarray,
    shoup: np.ndarray,
    moduli_col: np.ndarray,
    *,
    lazy: bool = False,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Elementwise ``(a * constants) mod q`` via Shoup multiplication.

    ``constants``/``shoup`` broadcast against ``a``; all inputs uint64 with
    residues below 2**31 (the operand ``a`` may be a lazy representative up
    to ``2q < 2**32``).  Replaces the hardware division of ``%`` with two
    multiplications and a shift -- the same trade the GPU butterflies make
    (Table III).  With ``lazy=True`` the result is left in ``[0, 2q)``,
    saving the correction passes when the caller reduces later anyway.
    ``out`` may alias ``a`` (the quotient is read out of ``a`` first).
    """
    shape = np.broadcast_shapes(a.shape, np.shape(shoup))
    quotient = _scratch("shoup-q", shape)
    np.multiply(a, shoup, out=quotient)
    quotient >>= STACK_SHOUP_SHIFT
    np.multiply(quotient, moduli_col, out=quotient)
    if out is None:
        r = a * constants
    else:
        np.multiply(a, constants, out=out)
        r = out
    r -= quotient
    if lazy:
        return r
    np.subtract(r, moduli_col, out=quotient)
    np.minimum(r, quotient, out=r)
    return r


def stack_add_mod(a: np.ndarray, b: np.ndarray, moduli_col: np.ndarray) -> np.ndarray:
    """Row-broadcast elementwise ``(a + b) mod q_i`` over a limb stack."""
    if stack_is_fast(moduli_col):
        out = _fast_reduce_once(a + b, moduli_col)
    else:
        out = (a + b) % moduli_col
    _DISPATCH.elementwise(
        "stack-add", reads=(a, b), writes=(out,),
        ops_per_element=_kernelforms.MODADD_OPS,
    )
    return out


def stack_sub_mod(a: np.ndarray, b: np.ndarray, moduli_col: np.ndarray) -> np.ndarray:
    """Row-broadcast elementwise ``(a - b) mod q_i`` over a limb stack."""
    if stack_is_fast(moduli_col):
        out = a + moduli_col
        out -= b
        out = _fast_reduce_once(out, moduli_col)
    else:
        out = (a - b) % moduli_col
    _DISPATCH.elementwise(
        "stack-sub", reads=(a, b), writes=(out,),
        ops_per_element=_kernelforms.MODADD_OPS,
    )
    return out


def stack_neg_mod(a: np.ndarray, moduli_col: np.ndarray) -> np.ndarray:
    """Row-broadcast elementwise ``(-a) mod q_i`` over a limb stack."""
    if stack_is_fast(moduli_col):
        out = np.where(a == 0, a, moduli_col - a)
    else:
        out = (-a) % moduli_col
    _DISPATCH.elementwise("stack-neg", reads=(a,), writes=(out,), ops_per_element=1.0)
    return out


def stack_mul_mod(a: np.ndarray, b: np.ndarray, moduli_col: np.ndarray) -> np.ndarray:
    """Row-broadcast elementwise ``(a * b) mod q_i`` over a limb stack.

    Exact on the fast backend because residues are below ``2**31``, so a
    product fits in a uint64 lane.  Both operands are variable, so this is
    the one batched kernel that keeps a hardware division (Barrett-style
    constant tricks need a fixed operand).
    """
    out = a * b
    out %= moduli_col
    _DISPATCH.elementwise(
        "stack-mul", reads=(a, b), writes=(out,),
        ops_per_element=_kernelforms.MODMUL_OPS,
    )
    return out


def stack_dot_mod(pairs, moduli_col: np.ndarray) -> np.ndarray:
    """Fused ``(Σ x_i * y_i) mod q`` over canonical stacks (§III-F.5).

    The dot-product fusion of the paper's key-switching inner loop: on the
    fast backend raw uint64 products are accumulated and reduced once per
    four terms -- ``4·(q-1)² < 2**64`` for ``q < 2**31``, so the wide
    accumulator cannot overflow -- instead of reducing after every
    multiply-add.
    """
    pairs = list(pairs)
    if not pairs:
        raise ValueError("stack_dot_mod needs at least one product")
    if stack_is_fast(moduli_col):
        acc = None
        product = None
        pending = 0
        for x, y in pairs:
            if acc is None:
                acc = x * y  # fresh: this array is the returned result
            else:
                if product is None:
                    product = _scratch("dot-prod", acc.shape)
                np.multiply(x, y, out=product)
                acc += product
            pending += 1
            if pending == 4:
                acc %= moduli_col
                pending = 0
        acc %= moduli_col
    else:
        acc = None
        for x, y in pairs:
            product = (x * y) % moduli_col
            acc = product if acc is None else (acc + product) % moduli_col
    _DISPATCH.elementwise(
        "stack-dot",
        reads=tuple(operand for pair in pairs for operand in pair),
        writes=(acc,),
        ops_per_element=len(pairs) * (_kernelforms.MODMUL_OPS + _kernelforms.MODADD_OPS),
    )
    return acc


def stack_scalar_mod(a: np.ndarray, scalars, moduli_col: np.ndarray,
                     *, out: np.ndarray | None = None) -> np.ndarray:
    """Multiply every row by its own integer constant modulo its prime.

    ``out`` (which may alias ``a``) lets owners of the input reuse its
    storage -- e.g. the stacked iNTT's fused ``N^{-1}`` scaling writes
    straight into the transform's working buffer.
    """
    col = scalar_column(scalars, moduli_col)
    if stack_is_fast(moduli_col):
        out = stack_shoup_mul(a, col, shoup_column(col, moduli_col), moduli_col,
                              out=out)
    else:
        result = (a * col) % moduli_col
        if out is None:
            out = result
        else:
            out[...] = result
    _DISPATCH.elementwise(
        "stack-scalar-mul", reads=(a, col), writes=(out,),
        ops_per_element=_kernelforms.SHOUP_MUL_OPS,
    )
    return out


def stack_add_scalar_mod(a: np.ndarray, scalars, moduli_col: np.ndarray) -> np.ndarray:
    """Add one integer constant per row (broadcast to every element)."""
    col = scalar_column(scalars, moduli_col)
    if stack_is_fast(moduli_col):
        out = _fast_reduce_once(a + col, moduli_col)
    else:
        out = (a + col) % moduli_col
    _DISPATCH.elementwise(
        "stack-scalar-add", reads=(a, col), writes=(out,),
        ops_per_element=_kernelforms.MODADD_OPS,
    )
    return out


def stack_switch_modulus(row: np.ndarray, q_from: int, moduli_col: np.ndarray) -> np.ndarray:
    """Re-reduce one residue row (mod ``q_from``) into every stack modulus.

    The batched form of :func:`vec_switch_modulus`: residues are interpreted
    in the centred interval ``(-q_from/2, q_from/2]`` and reduced against
    each row modulus at once, producing an ``(L, N)`` stack.
    """
    half = q_from >> 1
    if stack_is_fast(moduli_col) and is_fast_modulus(q_from):
        v = np.asarray(row).astype(np.int64)
        centred = np.where(v > half, v - q_from, v)
        out = centred[None, :] % moduli_col.astype(np.int64)
        out = out.astype(np.uint64)
    else:
        values = object_row(np.asarray(row).ravel())
        centred = np.where(values > half, values - q_from, values)
        out = centred[None, :] % np.array(
            [int(q) for q in moduli_col.ravel()], dtype=object
        ).reshape(-1, 1)
        out = coerce_stack(out, moduli_col)
    _DISPATCH.elementwise(
        "stack-switch-modulus", reads=(np.asarray(row),), writes=(out,),
        ops_per_element=_kernelforms.MODADD_OPS,
    )
    return out


__all__ = [
    "FAST_MODULUS_LIMIT",
    "WORD_BITS",
    "BarrettReducer",
    "MontgomeryReducer",
    "ShoupMultiplier",
    "add_mod",
    "sub_mod",
    "neg_mod",
    "mul_mod",
    "pow_mod",
    "inv_mod",
    "bit_length",
    "dtype_for_modulus",
    "is_fast_modulus",
    "as_residue_array",
    "zeros",
    "vec_add_mod",
    "vec_sub_mod",
    "vec_neg_mod",
    "vec_mul_mod",
    "vec_mul_scalar_mod",
    "vec_to_int_list",
    "vec_switch_modulus",
    "all_fast_moduli",
    "moduli_column",
    "stack_is_fast",
    "object_row",
    "coerce_stack",
    "as_residue_stack",
    "stack_zeros",
    "scalar_column",
    "STACK_SHOUP_SHIFT",
    "shoup_column",
    "stack_shoup_mul",
    "stack_add_mod",
    "stack_sub_mod",
    "stack_neg_mod",
    "stack_mul_mod",
    "stack_dot_mod",
    "stack_scalar_mod",
    "stack_add_scalar_mod",
    "stack_switch_modulus",
]
