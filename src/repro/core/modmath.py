"""Modular arithmetic primitives for word-sized prime moduli.

The CKKS scheme performs all polynomial arithmetic modulo a set of primes
``{q_0, ..., q_L}``.  Because GPUs (and CPUs) have no native modulo unit,
FIDESlib relies on the fast reduction techniques compared in Table III of
the paper:

* **Barrett reduction / multiplication** (the "improved Barrett" of
  Shivdikar et al. [50]) -- reduction by two multiplications using a
  precomputed reciprocal of the modulus.  FIDESlib uses Barrett as its
  general-purpose reduction because it needs no special operand encoding.
* **Montgomery reduction / multiplication** -- the same multiplication
  count, but operands must live in Montgomery form.
* **Shoup multiplication** -- the cheapest option when one operand is a
  known constant (twiddle factors, precomputed scalars); the constant's
  reciprocal is precomputed.

This module provides faithful scalar implementations of all three (used by
the NTT engine and exercised directly by the unit tests and the Table III
micro-benchmark) plus vectorised NumPy routines used by the bulk of the
library.  Two array backends are supported:

* a **fast backend** for moduli below 2**31, where a product of two
  residues fits in an unsigned 64-bit lane and NumPy's native ``%`` is
  exact; and
* an **exact backend** backed by Python integers (``dtype=object``) for
  word-sized moduli such as the paper's 59-bit primes.

The backend is chosen per modulus by :func:`dtype_for_modulus`; all public
vector routines accept either representation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Largest modulus for which the fast uint64 NumPy backend is exact:
#: residues are < 2**31, so products are < 2**62 and fit in a uint64 lane.
FAST_MODULUS_LIMIT = 1 << 31

#: Machine word size assumed by the Montgomery/Shoup precomputations.
WORD_BITS = 64
WORD_BASE = 1 << WORD_BITS


# ---------------------------------------------------------------------------
# Scalar helpers
# ---------------------------------------------------------------------------


def add_mod(a: int, b: int, q: int) -> int:
    """Return ``(a + b) mod q`` for residues ``a, b`` in ``[0, q)``.

    The sum lies in ``[0, 2q)`` so a single conditional subtraction brings
    it back into range, exactly as the paper describes for modular
    addition on the GPU.
    """
    s = a + b
    if s >= q:
        s -= q
    return s


def sub_mod(a: int, b: int, q: int) -> int:
    """Return ``(a - b) mod q`` for residues in ``[0, q)``."""
    d = a - b
    if d < 0:
        d += q
    return d


def neg_mod(a: int, q: int) -> int:
    """Return ``(-a) mod q``."""
    return 0 if a == 0 else q - a


def mul_mod(a: int, b: int, q: int) -> int:
    """Return ``(a * b) mod q`` using Python's arbitrary precision."""
    return (a * b) % q


def pow_mod(base: int, exponent: int, q: int) -> int:
    """Return ``base ** exponent mod q``."""
    return pow(base, exponent, q)


def inv_mod(a: int, q: int) -> int:
    """Return the multiplicative inverse of ``a`` modulo ``q``.

    Raises :class:`ZeroDivisionError` if ``a`` is not invertible.
    """
    return pow(a, -1, q)


def bit_length(x: int) -> int:
    """Return the bit length of ``x`` (0 for 0)."""
    return int(x).bit_length()


# ---------------------------------------------------------------------------
# Barrett reduction (improved Barrett, Table III)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BarrettReducer:
    """Barrett modular reduction for a fixed modulus ``q``.

    Precomputes ``mu = floor(2**(2k) / q)`` where ``k = bitlen(q)``.  The
    :meth:`reduce` method accepts any value below ``q**2`` (the range of a
    residue product) and returns the canonical residue.  Following the
    improved Barrett formulation, the quotient estimate is off by at most
    one, so a single correction step suffices; the paper notes the output
    naturally falls in ``[0, 2q)`` before that final correction.
    """

    modulus: int
    shift: int
    mu: int

    @classmethod
    def create(cls, modulus: int) -> "BarrettReducer":
        if modulus < 2:
            raise ValueError(f"Barrett modulus must be >= 2, got {modulus}")
        k = bit_length(modulus)
        shift = 2 * k
        mu = (1 << shift) // modulus
        return cls(modulus=modulus, shift=shift, mu=mu)

    def reduce(self, x: int) -> int:
        """Reduce ``x`` (``0 <= x < q**2``) modulo ``q``."""
        q = self.modulus
        estimate = (x * self.mu) >> self.shift
        r = x - estimate * q
        # The estimate underestimates the true quotient by at most one.
        if r >= q:
            r -= q
        return r

    def mul(self, a: int, b: int) -> int:
        """Return ``(a * b) mod q`` via Barrett reduction of the product."""
        return self.reduce(a * b)

    def multiplication_count(self) -> dict:
        """Return the wide/low multiplication counts of Table III."""
        return {"wide": 2, "low": 1}


# ---------------------------------------------------------------------------
# Montgomery reduction (Table III)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MontgomeryReducer:
    """Montgomery modular arithmetic with ``R = 2**64``.

    Values are mapped into Montgomery form ``aR mod q`` with
    :meth:`to_montgomery`; :meth:`mul` multiplies two Montgomery-form
    values and returns a Montgomery-form result; :meth:`from_montgomery`
    converts back.  This mirrors the Table III observation that Montgomery
    multiplication matches Barrett's cost but requires operands in a
    special encoding -- the reason FIDESlib prefers Barrett for general
    use.
    """

    modulus: int
    r_bits: int
    r_mask: int
    q_inv_neg: int
    r2: int

    @classmethod
    def create(cls, modulus: int, r_bits: int = WORD_BITS) -> "MontgomeryReducer":
        if modulus % 2 == 0:
            raise ValueError("Montgomery reduction requires an odd modulus")
        r = 1 << r_bits
        q_inv = inv_mod(modulus, r)
        q_inv_neg = (-q_inv) % r
        r2 = (r * r) % modulus
        return cls(
            modulus=modulus,
            r_bits=r_bits,
            r_mask=r - 1,
            q_inv_neg=q_inv_neg,
            r2=r2,
        )

    def reduce(self, x: int) -> int:
        """Montgomery-reduce ``x < q * R``: returns ``x * R^-1 mod q``."""
        q = self.modulus
        m = ((x & self.r_mask) * self.q_inv_neg) & self.r_mask
        t = (x + m * q) >> self.r_bits
        if t >= q:
            t -= q
        return t

    def to_montgomery(self, a: int) -> int:
        """Map ``a`` to Montgomery form ``a * R mod q``."""
        return self.reduce(a * self.r2)

    def from_montgomery(self, a_mont: int) -> int:
        """Map a Montgomery-form value back to the canonical residue."""
        return self.reduce(a_mont)

    def mul(self, a_mont: int, b_mont: int) -> int:
        """Multiply two Montgomery-form residues (result in Montgomery form)."""
        return self.reduce(a_mont * b_mont)

    def mul_plain(self, a: int, b: int) -> int:
        """Multiply two canonical residues, handling the form conversions."""
        return self.from_montgomery(
            self.mul(self.to_montgomery(a), self.to_montgomery(b))
        )

    def multiplication_count(self) -> dict:
        """Return the wide/low multiplication counts of Table III."""
        return {"wide": 2, "low": 1}


# ---------------------------------------------------------------------------
# Shoup multiplication (Table III)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShoupMultiplier:
    """Shoup modular multiplication by a fixed constant ``b``.

    Precomputes ``b_shoup = floor(b * 2**64 / q)``.  Multiplying an
    arbitrary residue ``a`` by the constant then costs one wide and two low
    multiplications (Table III).  FIDESlib uses Shoup multiplication for
    the NTT twiddle factors and other precomputed constants.
    """

    modulus: int
    operand: int
    precomputed: int
    shift: int

    @classmethod
    def create(cls, operand: int, modulus: int, shift: int = WORD_BITS) -> "ShoupMultiplier":
        if not 0 <= operand < modulus:
            raise ValueError("Shoup operand must be a canonical residue")
        precomputed = (operand << shift) // modulus
        return cls(modulus=modulus, operand=operand, precomputed=precomputed, shift=shift)

    def mul(self, a: int) -> int:
        """Return ``(a * operand) mod q`` in ``[0, q)``."""
        q = self.modulus
        quotient = (a * self.precomputed) >> self.shift
        r = (a * self.operand - quotient * q) % (1 << self.shift)
        if r >= q:
            r -= q
        return r

    def multiplication_count(self) -> dict:
        """Return the wide/low multiplication counts of Table III."""
        return {"wide": 1, "low": 2}


# ---------------------------------------------------------------------------
# Vectorised routines
# ---------------------------------------------------------------------------


def dtype_for_modulus(q: int):
    """Return the NumPy dtype used to store residues modulo ``q``.

    Moduli below :data:`FAST_MODULUS_LIMIT` use the fast ``uint64`` path;
    larger (e.g. 59-bit) moduli fall back to exact Python integers stored
    in an ``object`` array.
    """
    return np.uint64 if q < FAST_MODULUS_LIMIT else np.object_


def is_fast_modulus(q: int) -> bool:
    """Return True when the fast uint64 backend is exact for modulus ``q``."""
    return q < FAST_MODULUS_LIMIT


def as_residue_array(values, q: int) -> np.ndarray:
    """Coerce ``values`` into a canonical residue array for modulus ``q``."""
    if is_fast_modulus(q):
        arr = np.asarray(values)
        if arr.dtype == np.object_:
            arr = np.array([int(v) % q for v in arr.ravel()], dtype=np.uint64).reshape(arr.shape)
            return arr
        arr = arr.astype(np.int64, copy=True)
        arr %= q
        return arr.astype(np.uint64)
    flat = [int(v) % q for v in np.asarray(values, dtype=object).ravel()]
    out = np.array(flat, dtype=object)
    return out.reshape(np.asarray(values, dtype=object).shape)


def zeros(n: int, q: int) -> np.ndarray:
    """Return an all-zero residue array of length ``n`` for modulus ``q``."""
    if is_fast_modulus(q):
        return np.zeros(n, dtype=np.uint64)
    return np.array([0] * n, dtype=object)


def vec_add_mod(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """Elementwise ``(a + b) mod q``."""
    if is_fast_modulus(q):
        s = a + b
        return np.where(s >= q, s - np.uint64(q), s)
    return (a + b) % q


def vec_sub_mod(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """Elementwise ``(a - b) mod q``."""
    if is_fast_modulus(q):
        s = a + np.uint64(q) - b
        return np.where(s >= q, s - np.uint64(q), s)
    return (a - b) % q


def vec_neg_mod(a: np.ndarray, q: int) -> np.ndarray:
    """Elementwise ``(-a) mod q``."""
    if is_fast_modulus(q):
        return np.where(a == 0, a, np.uint64(q) - a)
    return (-a) % q


def vec_mul_mod(a: np.ndarray, b, q: int) -> np.ndarray:
    """Elementwise ``(a * b) mod q``; ``b`` may be an array or a scalar."""
    if is_fast_modulus(q):
        if np.isscalar(b) or isinstance(b, (int, np.integer)):
            b = np.uint64(int(b) % q)
        return (a * b) % np.uint64(q)
    if np.isscalar(b) or isinstance(b, (int, np.integer)):
        b = int(b) % q
    return (a * b) % q


def vec_mul_scalar_mod(a: np.ndarray, scalar: int, q: int) -> np.ndarray:
    """Elementwise multiplication by a scalar constant modulo ``q``."""
    return vec_mul_mod(a, scalar % q, q)


def vec_to_int_list(a: np.ndarray) -> list:
    """Return the residues of ``a`` as a list of Python ints."""
    return [int(x) for x in np.asarray(a).ravel()]


def vec_switch_modulus(a: np.ndarray, q_from: int, q_to: int) -> np.ndarray:
    """Re-reduce residues of ``a`` (mod ``q_from``) into modulus ``q_to``.

    Residues are interpreted in the centred interval
    ``(-q_from/2, q_from/2]`` before reduction, which is the convention the
    base-conversion and mod-raise steps require to keep the underlying
    signed value intact.
    """
    values = np.array([int(x) for x in np.asarray(a).ravel()], dtype=object)
    half = q_from >> 1
    centred = np.where(values > half, values - q_from, values)
    reduced = [int(v) % q_to for v in centred]
    out = np.array(reduced, dtype=object).reshape(np.asarray(a).shape)
    return as_residue_array(out, q_to)


__all__ = [
    "FAST_MODULUS_LIMIT",
    "WORD_BITS",
    "BarrettReducer",
    "MontgomeryReducer",
    "ShoupMultiplier",
    "add_mod",
    "sub_mod",
    "neg_mod",
    "mul_mod",
    "pow_mod",
    "inv_mod",
    "bit_length",
    "dtype_for_modulus",
    "is_fast_modulus",
    "as_residue_array",
    "zeros",
    "vec_add_mod",
    "vec_sub_mod",
    "vec_neg_mod",
    "vec_mul_mod",
    "vec_mul_scalar_mod",
    "vec_mul_scalar_mod",
    "vec_to_int_list",
    "vec_switch_modulus",
]
