"""Auto-fusion over the executable trace IR: merge elementwise chains.

Module map (where this sits in the execution plane)
---------------------------------------------------

::

    repro.core.dispatch.KernelTrace (executable=True)
        the recorded stream: per-event ViewSpecs (buffer token + element
        interval) and replay thunks -- the trace IR
                |
                v
    repro.core.fusion.fuse_trace          (this module)
        walks the recorded byte intervals, proves which producer ->
        consumer pairs are legal to fuse, and greedily merges maximal
        chains of elementwise kernels into mega-kernels
                |
                +--> FusionResult.fused_trace : a rebuilt KernelTrace in
                |    which each chain is ONE kernel (launches=1, summed
                |    int_ops, chain-external endpoint bytes only) --
                |    priced by repro.perf.trace_model.TraceCostModel and
                |    schedulable like any recorded trace
                |
                +--> FusionResult.program() : a FusedProgram that actually
                     EXECUTES the fused stream -- each chain runs as one
                     python step whose intermediate values live in
                     temporaries drawn from the modmath scratch pool
                     instead of materialised data-plane buffers;
                     FusedProgram.verify() asserts bit-identity against
                     the recorded eager execution

Legality (proved from the recorded producer/consumer byte ranges)
-----------------------------------------------------------------

A producer ``P`` may fuse with a consumer ``C`` when all of:

* both are elementwise kernels with replay thunks, on the same device;
* ``P`` has exactly one write view ``W``;
* ``C`` is the *only* event that ever reads ``W``, and reads it as the
  identical interval and shape (overlapping-but-not-equal is illegal --
  a partial read needs the materialised buffer);
* no event between ``P`` and ``C`` writes any byte of ``W`` (no
  interleaved writer clobbers the intermediate);
* after ``C``, nothing touches ``W`` -- unless ``C`` itself rewrites the
  identical interval in place (the rescale/ModDown tails), in which case
  ``W`` holds the chain output and later readers are fine.

Chains extend greedily (``P -> C -> C' ...``) while each new tail keeps
every earlier member's *other* operands unclobbered by the events the
member is moved past -- fused chains execute contiguously at the tail's
position, so an interleaved writer to any member's read operand vetoes
the extension.

Pricing of a fused kernel is symbolic, mirroring what a single launched
mega-kernel would do: ``int_ops`` is the sum over members (arithmetic is
conserved), while each internal edge's intermediate traffic -- the
producer's write of ``W`` and the consumer's read of it -- is dropped
from the byte counts, leaving only the chain-external endpoint bytes.
Fusion therefore never increases ``bytes_moved`` and always conserves
``int_ops`` (asserted by ``benchmarks/check_trace_reconciliation.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator

import numpy as np

from repro.core import modmath
from repro.core.dispatch import KernelTrace, TraceEvent, ViewSpec, get_dispatcher
from repro.gpu.kernel import ELEMENT_BYTES, Kernel

_DISPATCH = get_dispatcher()


def _overlaps(view: ViewSpec, token: int, lo: int, hi: int) -> bool:
    """True when ``view`` touches any element of ``[lo, hi)`` on ``token``."""
    return (
        view.token == token
        and view.offset < hi
        and lo < view.offset + view.size
    )


def _producer_eligible(event: TraceEvent) -> bool:
    """Can ``event`` head a fusion edge (single intermediate write)?"""
    return (
        event.kind == "elementwise"
        and event.replay is not None
        and len(event.write_views) == 1
        and event.write_views[0].size > 0
    )


@dataclass(frozen=True)
class FusedChain:
    """One merged producer chain: original event indices plus savings."""

    members: tuple[int, ...]
    kernels: tuple[str, ...]
    #: bytes of intermediate traffic eliminated (read + write sides).
    saved_bytes: float

    def __len__(self) -> int:
        return len(self.members)


class _Fuser:
    """One fusion pass over an executable trace (shared analysis state)."""

    def __init__(self, trace: KernelTrace) -> None:
        if not trace.executable:
            raise ValueError(
                "fusion needs an executable trace; record with "
                "record(executable=True) / session.trace(executable=True)"
            )
        self.trace = trace
        self.events = trace.events
        # token -> [(event_index, is_write, view)] in program order.
        self._accesses: dict[int, list[tuple[int, bool, ViewSpec]]] = {}
        for event in self.events:
            for view in event.read_views:
                self._accesses.setdefault(view.token, []).append(
                    (event.index, False, view)
                )
            for view in event.write_views:
                self._accesses.setdefault(view.token, []).append(
                    (event.index, True, view)
                )

    # -- edge legality -------------------------------------------------------

    def successor(self, producer: TraceEvent) -> int | None:
        """The unique legal fusion consumer of ``producer``, if any."""
        if not _producer_eligible(producer):
            return None
        w = producer.write_views[0]
        lo, hi = w.offset, w.offset + w.size
        later = [
            (index, is_write, view)
            for index, is_write, view in self._accesses.get(w.token, [])
            if index > producer.index and _overlaps(view, w.token, lo, hi)
        ]
        readers = sorted({index for index, is_write, _ in later if not is_write})
        if not readers:
            return None  # dead intermediate: nothing to fuse into
        consumer_index = readers[0]
        consumer = self.events[consumer_index]
        if (
            consumer.kind != "elementwise"
            or consumer.replay is None
            or consumer.kernel.device != producer.kernel.device
        ):
            return None
        in_place = False
        for index, is_write, view in later:
            if index > consumer_index:
                continue  # post-consumer accesses are judged below
            exact = (
                view.offset == lo
                and view.offset + view.size == hi
                and view.shape == w.shape
            )
            if not is_write:
                # The consumer must cover the produced interval exactly
                # (same interval, same shape) -- a partial read needs the
                # materialised buffer.
                if not exact:
                    return None
            elif index < consumer_index:
                return None  # interleaved writer clobbers the intermediate
            elif not exact:
                return None  # partial in-place rewrite needs the buffer
            else:
                in_place = True
        # After the consumer, the intermediate must be dead -- unless the
        # consumer rewrote the identical interval in place, in which case
        # it holds the chain output and later readers are fine.
        if not in_place and any(i > consumer_index for i, _, _ in later):
            return None
        return consumer_index

    def _extension_safe(self, members: list[int], new_tail: int) -> bool:
        """Moving ``members`` down to ``new_tail``: operands unclobbered?

        The chain executes contiguously at the tail's position, so every
        event between the current tail and ``new_tail`` runs *before*
        members that originally preceded it.  Any such event writing a
        byte one of the members reads would change what the member sees.
        """
        window = range(members[-1] + 1, new_tail)
        if not window:
            return True
        member_reads = [
            view for m in members for view in self.events[m].read_views
        ]
        for index in window:
            for wv in self.events[index].write_views:
                wlo, whi = wv.offset, wv.offset + wv.size
                for rv in member_reads:
                    if _overlaps(rv, wv.token, wlo, whi):
                        return False
        return True

    # -- greedy chain construction -------------------------------------------

    def chains(self) -> list[FusedChain]:
        """Maximal legal chains, greedily grown in program order."""
        used: set[int] = set()
        chains: list[FusedChain] = []
        for head in range(len(self.events)):
            if head in used:
                continue
            members = [head]
            while True:
                tail = self.events[members[-1]]
                nxt = self.successor(tail)
                if (
                    nxt is None
                    or nxt in used
                    or not self._extension_safe(members, nxt)
                ):
                    break
                members.append(nxt)
                if not _producer_eligible(self.events[nxt]):
                    break  # consumer with external writes ends the chain
            if len(members) < 2:
                continue
            used.update(members)
            saved = sum(
                2.0 * self.events[m].write_views[0].size * ELEMENT_BYTES
                for m in members[:-1]
            )
            chains.append(
                FusedChain(
                    members=tuple(members),
                    kernels=tuple(
                        self.events[m].kernel.name for m in members
                    ),
                    saved_bytes=saved,
                )
            )
        return chains


def _group_segments(
    members: tuple[int, ...],
    group_map: dict[int, tuple[tuple[int, ...], object]],
):
    """Split chain ``members`` into fusion-group runs and solo members.

    Yields ``(indices, replay)`` for each registered launch group (see
    ``Dispatcher.fusion_group``) whose member events appear consecutively
    in the chain, and ``(index, None)`` for every other member.  A group
    only substitutes when the chain swallowed it whole -- a partially
    fused group (e.g. a downstream reader split the stage run) falls back
    to per-member execution.
    """
    i = 0
    while i < len(members):
        group = group_map.get(members[i])
        if group is not None:
            indices, replay = group
            k = len(indices)
            if tuple(members[i : i + k]) == indices:
                yield indices, replay
                i += k
                continue
        yield members[i], None
        i += 1


def _fused_kernel(events: list[TraceEvent], chain: FusedChain) -> Kernel:
    """Price one chain as a single launched mega-kernel."""
    members = [events[m] for m in chain.members]
    bytes_read = sum(e.kernel.bytes_read for e in members)
    bytes_written = sum(e.kernel.bytes_written for e in members)
    # Each internal edge drops the producer's write and the consumer's
    # read of the intermediate; only endpoint bytes remain.
    edge_bytes = chain.saved_bytes / 2.0
    bytes_read = max(0.0, bytes_read - edge_bytes)
    bytes_written = max(0.0, bytes_written - edge_bytes)
    names = chain.kernels
    if len(names) > 4:
        label = f"{names[0]}+..+{names[-1]}|{len(names)}"
    else:
        label = "+".join(names)
    return Kernel(
        name=f"fused({label})",
        bytes_read=bytes_read,
        bytes_written=bytes_written,
        int_ops=sum(e.kernel.int_ops for e in members),
        working_set_bytes=max(e.kernel.working_set_bytes for e in members),
        reuse=max(e.kernel.reuse for e in members),
        stream=members[0].kernel.stream,
        fused=sum(e.kernel.fused for e in members),
        launches=1.0,
        device=members[0].kernel.device,
    )


@dataclass
class FusionResult:
    """Outcome of one fusion pass: the rewritten trace plus its chains."""

    trace: KernelTrace
    chains: list[FusedChain]
    fused_trace: KernelTrace = field(repr=False, default=None)

    @property
    def events_before(self) -> int:
        return len(self.trace.events)

    @property
    def events_after(self) -> int:
        return len(self.fused_trace.events)

    @property
    def saved_bytes(self) -> float:
        return sum(chain.saved_bytes for chain in self.chains)

    def program(self) -> "FusedProgram":
        """A runnable fused re-execution of the recorded stream."""
        return FusedProgram(self)

    def summary(self) -> dict:
        """Machine-readable fusion statistics (benchmark artifacts)."""
        group_map = {
            indices[0]: (indices, replay)
            for indices, replay in getattr(self.trace, "_fusion_groups", [])
        }
        stage_groups = sum(
            1
            for chain in self.chains
            for _, replay in _group_segments(chain.members, group_map)
            if replay is not None
        )
        return {
            "events_before": self.events_before,
            "events_after": self.events_after,
            "chains": len(self.chains),
            "fused_events": sum(len(c) for c in self.chains),
            "longest_chain": max((len(c) for c in self.chains), default=0),
            "stage_groups_fused": stage_groups,
            "int_ops_before": self.trace.int_ops,
            "int_ops_after": self.fused_trace.int_ops,
            "bytes_moved_before": self.trace.bytes_moved,
            "bytes_moved_after": self.fused_trace.bytes_moved,
            "saved_bytes": self.saved_bytes,
        }


def fuse_trace(trace: KernelTrace) -> FusionResult:
    """Run the fusion pass over an executable trace.

    Returns a :class:`FusionResult` whose ``fused_trace`` is a plain
    (priceable, schedulable) :class:`KernelTrace` with each legal chain
    collapsed to one kernel, and whose :meth:`FusionResult.program`
    executes the fused stream with scratch-pool intermediates.
    """
    fuser = _Fuser(trace)
    chains = fuser.chains()
    events = trace.events
    member_to_chain: dict[int, FusedChain] = {}
    for chain in chains:
        for m in chain.members:
            member_to_chain[m] = chain
    fused = KernelTrace()
    new_index: dict[int, int] = {}

    def _remap(deps: tuple[int, ...]) -> list[int]:
        mapped: set[int] = set()
        for dep in deps:
            target = new_index.get(dep)
            if target is not None:
                mapped.add(target)
        return sorted(mapped)

    for event in events:
        chain = member_to_chain.get(event.index)
        if chain is None:
            appended = fused.append(
                replace(event.kernel), scope=event.scope,
                deps=_remap(event.deps),
            )
            new_index[event.index] = appended.index
        elif event.index == chain.members[-1]:
            # The whole chain lands at its tail's position; external
            # dependencies are the union of member deps outside the chain.
            deps: set[int] = set()
            for m in chain.members:
                deps.update(_remap(events[m].deps))
            appended = fused.append(
                _fused_kernel(events, chain),
                scope=events[chain.members[0]].scope,
                deps=sorted(deps),
            )
            for m in chain.members:
                new_index[m] = appended.index
        # mid-chain members emit nothing; their new_index is assigned when
        # the tail lands (forward deps from later events remap to it).
    return FusionResult(trace=trace, chains=chains, fused_trace=fused)


class FusedProgram:
    """Executes the fused stream against fresh buffers + pool scratch.

    Mirrors :class:`repro.core.dispatch.TraceProgram`, with two changes:

    * each fused chain is one step -- its member thunks run back to back,
      and every internal edge's intermediate binds to a temporary drawn
      from the modmath scratch pool instead of a materialised program
      buffer (tokens *only* ever touched as intermediates get no buffer
      at all);
    * steps execute in the fused trace's order (chains at their tail's
      position), which the extension-safety legality check proved
      equivalent to the recorded order.

    :meth:`verify` asserts every chain-external write interval is
    bit-identical to the recorded eager execution.
    """

    def __init__(self, result: FusionResult) -> None:
        trace = result.trace
        events = trace.events
        self.result = result
        self.trace = trace
        # (event, write position) / (event, read position) -> scratch array
        # for every internal edge of every chain.
        scratch_w: dict[tuple[int, int], np.ndarray] = {}
        scratch_r: dict[tuple[int, int], np.ndarray] = {}
        for chain in result.chains:
            tail_event = events[chain.members[-1]]
            tail_view = (
                tail_event.write_views[0]
                if len(tail_event.write_views) == 1
                else None
            )
            for depth, producer_index in enumerate(chain.members[:-1]):
                w = events[producer_index].write_views[0]
                if (
                    tail_view is not None
                    and w.token == tail_view.token
                    and w.offset == tail_view.offset
                    and w.size == tail_view.size
                ):
                    # In-place run: the member writes exactly the chain's
                    # external output interval, and chain legality proved
                    # nothing else touches it before the tail -- execute
                    # directly in the output buffer instead of staging
                    # through scratch (saves the round-trip copies).
                    continue
                base = trace._bases[w.token]
                tmp = modmath._scratch(f"fuse{depth}", w.shape, base.dtype)
                scratch_w[(producer_index, 0)] = tmp
                consumer = events[chain.members[depth + 1]]
                for pos, view in enumerate(consumer.read_views):
                    if (
                        view.token == w.token
                        and view.offset == w.offset
                        and view.size == w.size
                    ):
                        scratch_r[(consumer.index, pos)] = tmp
        self._scratch_w = scratch_w
        self._scratch_r = scratch_r
        # Classify tokens over chain-EXTERNAL accesses only (recorded
        # order == execution order for externals, by extension safety).
        written: set[int] = set()
        seeded: set[int] = set()
        external: set[int] = set()
        for event in events:
            for pos, view in enumerate(event.read_views):
                if (event.index, pos) in scratch_r:
                    continue
                external.add(view.token)
                if view.token not in written:
                    seeded.add(view.token)
            for pos, view in enumerate(event.write_views):
                if (event.index, pos) in scratch_w:
                    continue
                external.add(view.token)
                written.add(view.token)
        seeded &= written
        self._buffers: dict[int, np.ndarray] = {}
        self._seeds: dict[int, np.ndarray] = {}
        for token, base in trace._bases.items():
            if token not in external:
                continue  # pure intermediate: scratch only, no buffer
            if token in written:
                self._buffers[token] = np.empty_like(base)
                if token in seeded:
                    # The trace's first-read snapshot, not the live array
                    # (which the recorded region may have overwritten).
                    self._seeds[token] = trace._seeds.get(token, base)
            else:
                self._buffers[token] = base
        # One step per fused-trace kernel: chains at their tail position.
        # Registered launch groups (per-stage transform runs) swallowed
        # whole by a chain replace their member thunks with the single
        # stage-fused mega-kernel replay, reading the first member's
        # operands and writing the last member's destination.
        member_to_chain: dict[int, FusedChain] = {}
        for chain in result.chains:
            for m in chain.members:
                member_to_chain[m] = chain
        group_map = {
            indices[0]: (indices, replay)
            for indices, replay in getattr(trace, "_fusion_groups", [])
        }
        self._steps: list[tuple] = []
        for event in events:
            chain = member_to_chain.get(event.index)
            if chain is None:
                self._steps.append((self._resolve(event),))
            elif event.index == chain.members[-1]:
                step = []
                for seg, replay in _group_segments(chain.members, group_map):
                    if replay is None:
                        step.append(self._resolve(events[seg]))
                    else:
                        # The group's replay sees every member's reads in
                        # member order (it knows its own layout) and the
                        # last member's writes.
                        resolved = [self._resolve(events[i]) for i in seg]
                        reads = tuple(
                            r for _, member_reads, _ in resolved
                            for r in member_reads
                        )
                        step.append((replay, reads, resolved[-1][2]))
                self._steps.append(tuple(step))
        # Final-state verify intervals.  Walk ALL writes in order: an
        # internal (fused-away) write supersedes earlier external
        # intervals it touches -- the live array then holds a value the
        # fused program intentionally never materialises, so those
        # intervals drop out of verification.
        intervals: dict[int, list[list[int]]] = {}
        for event in events:
            for pos, view in enumerate(event.write_views):
                spans = intervals.setdefault(view.token, [])
                lo, hi = view.offset, view.offset + view.size
                if (event.index, pos) in scratch_w:
                    spans[:] = [
                        s for s in spans
                        if not (s[0] < hi and lo < s[1])
                    ]
                else:
                    spans[:] = [
                        s for s in spans if not (lo <= s[0] and s[1] <= hi)
                    ]
                    spans.append([lo, hi])
        self._written_intervals = {
            token: spans for token, spans in intervals.items() if spans
        }

    def _view(self, spec: ViewSpec) -> np.ndarray:
        flat = self._buffers[spec.token].reshape(-1)
        return flat[spec.offset : spec.offset + spec.size].reshape(spec.shape)

    def _resolve(self, event: TraceEvent) -> tuple:
        """One member as (replay, reads, writes) with scratch bindings."""
        reads = tuple(
            self._scratch_r.get((event.index, pos)) if
            (event.index, pos) in self._scratch_r else self._view(view)
            for pos, view in enumerate(event.read_views)
        )
        writes = tuple(
            self._scratch_w.get((event.index, pos)) if
            (event.index, pos) in self._scratch_w else self._view(view)
            for pos, view in enumerate(event.write_views)
        )
        return (event.replay, reads, writes)

    @property
    def step_count(self) -> int:
        return len(self._steps)

    def run(self) -> None:
        """Re-execute the fused stream (chains as single python steps)."""
        for token, seed in self._seeds.items():
            np.copyto(self._buffers[token], seed)
        with _DISPATCH.suppressed():
            for group in self._steps:
                for replay_fn, reads, writes in group:
                    replay_fn(reads, writes)

    def output(self, array: np.ndarray) -> np.ndarray:
        """The program buffer holding the fused-replay value of ``array``."""
        state, (lo, _) = self.trace._buffer(array)
        if state.token not in self._buffers:
            raise KeyError(
                "array was not observed by the trace (or was fully fused "
                "away as an intermediate)"
            )
        spec = self.trace._view_spec(array, state, lo)
        return self._view(spec)

    def verify(self) -> None:
        """Run and assert bit-identity with the recorded eager execution."""
        self.run()
        for token, spans in self._written_intervals.items():
            live = self.trace._bases[token].reshape(-1)
            replayed = self._buffers[token].reshape(-1)
            for lo, hi in spans:
                if not np.array_equal(replayed[lo:hi], live[lo:hi]):
                    raise AssertionError(
                        f"fused replay diverges from eager execution in "
                        f"buffer {token}, elements [{lo}, {hi})"
                    )


__all__ = ["FusedChain", "FusedProgram", "FusionResult", "fuse_trace"]
