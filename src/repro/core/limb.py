"""``VectorGPU`` and ``Limb``: the smallest data containers of Figure 2.

A ``Limb`` holds the residues of an ``N``-degree polynomial under a single
RNS prime ``q_i``, together with the representation it is currently in
(coefficient or evaluation/NTT).  Its backing store is a ``VectorGPU``:
in FIDESlib this is an RAII wrapper over stream-ordered device memory;
here it wraps a NumPy array plus an allocation handle in the
:class:`~repro.core.memory.MemoryPool` so footprint accounting matches the
GPU library.  Unmanaged vectors (views into a larger flattened buffer, the
second allocation strategy discussed in §III-D) are supported through the
``managed`` flag.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.core import modmath
from repro.core.automorphism import apply_coeff_automorphism
from repro.core.memory import STRATEGY_ARRAY_PER_LIMB, MemoryPool, default_pool
from repro.core.ntt import get_engine


class LimbFormat(enum.Enum):
    """Representation of a limb's data."""

    COEFFICIENT = "coeff"
    EVALUATION = "eval"


class VectorGPU:
    """RAII-style wrapper over a contiguous device buffer.

    Parameters
    ----------
    element_count:
        Number of elements in the buffer.
    element_bytes:
        Bytes per element (8 for the 64-bit limbs the library verifies,
        4 for the 32-bit template instantiation).
    pool:
        Memory pool charged for the allocation.  Managed vectors allocate
        at construction and free when :meth:`free` is called or the object
        is garbage collected; unmanaged vectors only reference memory owned
        by a higher-level object.
    """

    def __init__(
        self,
        element_count: int,
        *,
        element_bytes: int = 8,
        pool: MemoryPool | None = None,
        managed: bool = True,
        stream: int = 0,
        tag: str = "VectorGPU",
        strategy: str = STRATEGY_ARRAY_PER_LIMB,
    ) -> None:
        self.element_count = element_count
        self.element_bytes = element_bytes
        self.managed = managed
        self.pool = pool if pool is not None else default_pool
        self.strategy = strategy
        self._handle: int | None = None
        if managed:
            self._handle = self.pool.allocate(
                element_count * element_bytes, tag=tag, stream=stream, strategy=strategy
            )

    @property
    def nbytes(self) -> int:
        """Return the buffer size in bytes."""
        return self.element_count * self.element_bytes

    @property
    def is_live(self) -> bool:
        """Return True while a managed allocation has not been freed."""
        return self._handle is not None

    def free(self) -> None:
        """Release the underlying allocation (no-op for unmanaged vectors)."""
        if self.managed and self._handle is not None:
            self.pool.free(self._handle)
            self._handle = None

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        try:
            self.free()
        except Exception:
            pass


@dataclass
class Limb:
    """Residues of a degree-``N`` polynomial under a single prime modulus."""

    modulus: int
    data: np.ndarray
    fmt: LimbFormat = LimbFormat.COEFFICIENT
    ring_degree: int = field(default=0)
    buffer: VectorGPU | None = field(default=None, repr=False)
    aux_buffer: VectorGPU | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.data = modmath.as_residue_array(self.data, self.modulus)
        if self.ring_degree == 0:
            self.ring_degree = len(self.data)
        if len(self.data) != self.ring_degree:
            raise ValueError("limb data length does not match ring degree")

    # -- constructors --------------------------------------------------------

    @classmethod
    def zero(
        cls,
        ring_degree: int,
        modulus: int,
        fmt: LimbFormat = LimbFormat.COEFFICIENT,
        *,
        pool: MemoryPool | None = None,
    ) -> "Limb":
        """Return an all-zero limb, charging its buffer to ``pool``."""
        buffer = VectorGPU(ring_degree, pool=pool, tag=f"limb[{modulus}]")
        return cls(
            modulus=modulus,
            data=modmath.zeros(ring_degree, modulus),
            fmt=fmt,
            ring_degree=ring_degree,
            buffer=buffer,
        )

    @classmethod
    def view_of(
        cls,
        modulus: int,
        data: np.ndarray,
        fmt: LimbFormat,
        ring_degree: int,
        buffer: VectorGPU | None = None,
    ) -> "Limb":
        """Build a zero-copy limb over already-canonical residue data.

        Used for the per-limb views into a flattened
        :class:`~repro.core.limb_stack.LimbStack` buffer (the second §III-D
        allocation strategy): canonicalization is skipped so ``data`` stays
        a live view into the stack row, and ``buffer`` is the unmanaged
        :class:`VectorGPU` window over the owning allocation.
        """
        limb = object.__new__(cls)
        limb.modulus = modulus
        limb.data = data
        limb.fmt = fmt
        limb.ring_degree = ring_degree
        limb.buffer = buffer
        limb.aux_buffer = None
        return limb

    def copy(self) -> "Limb":
        """Return a deep copy sharing no data with this limb.

        Copies of pool-charged limbs stay pool-charged: a fresh managed
        buffer is allocated from the same pool the original was charged to,
        so copied limbs cannot escape footprint accounting.
        """
        buffer = None
        if self.buffer is not None:
            buffer = VectorGPU(
                self.ring_degree,
                element_bytes=self.buffer.element_bytes,
                pool=self.buffer.pool,
                tag=f"limb[{self.modulus}]",
            )
        return Limb(
            modulus=self.modulus,
            data=self.data.copy(),
            fmt=self.fmt,
            ring_degree=self.ring_degree,
            buffer=buffer,
        )

    def release(self) -> None:
        """Free the managed buffers held by this limb."""
        if self.buffer is not None:
            self.buffer.free()
        if self.aux_buffer is not None:
            self.aux_buffer.free()

    # -- element-wise arithmetic ---------------------------------------------

    def _check_compatible(self, other: "Limb") -> None:
        if self.modulus != other.modulus:
            raise ValueError("limb moduli differ")
        if self.fmt != other.fmt:
            raise ValueError(f"limb formats differ: {self.fmt} vs {other.fmt}")

    def add(self, other: "Limb") -> "Limb":
        """Return the element-wise modular sum."""
        self._check_compatible(other)
        return Limb(self.modulus, modmath.vec_add_mod(self.data, other.data, self.modulus),
                    self.fmt, self.ring_degree)

    def sub(self, other: "Limb") -> "Limb":
        """Return the element-wise modular difference."""
        self._check_compatible(other)
        return Limb(self.modulus, modmath.vec_sub_mod(self.data, other.data, self.modulus),
                    self.fmt, self.ring_degree)

    def negate(self) -> "Limb":
        """Return the element-wise modular negation."""
        return Limb(self.modulus, modmath.vec_neg_mod(self.data, self.modulus),
                    self.fmt, self.ring_degree)

    def multiply(self, other: "Limb") -> "Limb":
        """Return the element-wise modular product (evaluation format only)."""
        self._check_compatible(other)
        if self.fmt is not LimbFormat.EVALUATION:
            raise ValueError("element-wise limb products require evaluation format")
        return Limb(self.modulus, modmath.vec_mul_mod(self.data, other.data, self.modulus),
                    self.fmt, self.ring_degree)

    def multiply_scalar(self, scalar: int) -> "Limb":
        """Return the limb multiplied by an integer constant modulo ``q_i``."""
        return Limb(self.modulus,
                    modmath.vec_mul_scalar_mod(self.data, scalar, self.modulus),
                    self.fmt, self.ring_degree)

    def add_scalar(self, scalar: int) -> "Limb":
        """Add an integer constant.

        In coefficient format the constant is added to the degree-0
        coefficient; in evaluation format a constant polynomial evaluates to
        the same value everywhere, so it is added to every element.
        """
        scalar = int(scalar) % self.modulus
        if self.fmt is LimbFormat.EVALUATION:
            const = modmath.as_residue_array(
                np.full(self.ring_degree, scalar, dtype=object), self.modulus)
            return Limb(self.modulus, modmath.vec_add_mod(self.data, const, self.modulus),
                        self.fmt, self.ring_degree)
        data = self.data.copy()
        data[0] = modmath.add_mod(int(data[0]), scalar, self.modulus)
        return Limb(self.modulus, data, self.fmt, self.ring_degree)

    # -- representation changes ----------------------------------------------

    def to_evaluation(self) -> "Limb":
        """Return the limb in evaluation (NTT) format."""
        if self.fmt is LimbFormat.EVALUATION:
            return self.copy()
        engine = get_engine(self.ring_degree, self.modulus)
        return Limb(self.modulus, engine.forward(self.data),
                    LimbFormat.EVALUATION, self.ring_degree)

    def to_coefficient(self) -> "Limb":
        """Return the limb in coefficient format."""
        if self.fmt is LimbFormat.COEFFICIENT:
            return self.copy()
        engine = get_engine(self.ring_degree, self.modulus)
        return Limb(self.modulus, engine.inverse(self.data),
                    LimbFormat.COEFFICIENT, self.ring_degree)

    def automorphism(self, exponent: int) -> "Limb":
        """Apply the Galois automorphism ``X -> X^exponent``.

        The permutation is defined on the coefficient representation; limbs
        in evaluation format are transformed through an iNTT/NTT round trip
        exactly like the GPU ``Automorph`` kernel path used before key
        switching.
        """
        if self.fmt is LimbFormat.EVALUATION:
            coeff = self.to_coefficient()
            rotated = coeff.automorphism(exponent)
            return rotated.to_evaluation()
        data = apply_coeff_automorphism(self.data, self.ring_degree, exponent, self.modulus)
        return Limb(self.modulus, data, self.fmt, self.ring_degree)

    def switch_modulus(self, new_modulus: int) -> "Limb":
        """Re-interpret the limb under a different modulus (centred lift)."""
        if self.fmt is not LimbFormat.COEFFICIENT:
            raise ValueError("modulus switching requires coefficient format")
        data = modmath.vec_switch_modulus(self.data, self.modulus, new_modulus)
        return Limb(new_modulus, data, self.fmt, self.ring_degree)

    def __len__(self) -> int:
        return self.ring_degree


__all__ = ["Limb", "LimbFormat", "VectorGPU"]
