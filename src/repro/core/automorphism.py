"""Galois automorphism index maps for the negacyclic ring.

Rotation (``HRotate``) and conjugation (``HConjugate``) of CKKS messages
are realised by the ring automorphisms ``X -> X^k`` with ``k`` odd.  In the
coefficient representation the automorphism permutes coefficients and
flips the sign of those whose exponent wraps past ``X^N = -1``.  This
module precomputes those permutations; :class:`~repro.core.rns_poly.RNSPoly`
applies them limb by limb (switching to the coefficient representation
when necessary, as the GPU ``Automorph`` kernel does).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np


@lru_cache(maxsize=None)
def coeff_automorphism_map(ring_degree: int, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(source_index, sign)`` arrays for ``a(X) -> a(X^k)``.

    The transformed polynomial ``b`` satisfies
    ``b[i] = sign[i] * a[source_index[i]]`` where ``sign`` is ±1.  ``k``
    must be odd so the map is a bijection on exponents modulo ``2N``.
    """
    n = ring_degree
    if k % 2 == 0:
        raise ValueError("automorphism exponent must be odd")
    k = k % (2 * n)
    source = np.zeros(n, dtype=np.int64)
    sign = np.zeros(n, dtype=np.int64)
    for j in range(n):
        exponent = (j * k) % (2 * n)
        if exponent < n:
            source[exponent] = j
            sign[exponent] = 1
        else:
            source[exponent - n] = j
            sign[exponent - n] = -1
    return source, sign


def apply_coeff_automorphism(data: np.ndarray, ring_degree: int, k: int, modulus: int) -> np.ndarray:
    """Apply ``X -> X^k`` to a coefficient-domain limb array."""
    source, sign = coeff_automorphism_map(ring_degree, k)
    gathered = np.asarray(data)[source]
    if gathered.dtype == np.object_:
        negate = np.array([(-int(v)) % modulus for v in gathered], dtype=object)
    else:
        negate = np.where(gathered == 0, gathered, np.uint64(modulus) - gathered)
    return np.where(sign == 1, gathered, negate)


def rotation_to_exponent(ring_degree: int, steps: int) -> int:
    """Return the automorphism exponent implementing a rotation by ``steps``.

    CKKS slots are indexed by powers of 5 modulo ``2N``; rotating the
    message vector left by ``steps`` corresponds to ``X -> X^{5^steps}``.
    Negative steps rotate right.
    """
    m = 2 * ring_degree
    return pow(5, steps % (ring_degree // 2), m)


def conjugation_exponent(ring_degree: int) -> int:
    """Return the automorphism exponent implementing complex conjugation."""
    return 2 * ring_degree - 1


__all__ = [
    "coeff_automorphism_map",
    "apply_coeff_automorphism",
    "rotation_to_exponent",
    "conjugation_exponent",
]
