"""``RNSPoly`` and ``LimbPartition``: the polynomial containers of Figure 2.

An :class:`RNSPoly` is a degree-``N`` polynomial decomposed over an RNS
basis ``B = {q_0, ..., q_l}``; it owns one or more
:class:`LimbPartition` objects, each representing the portion of the
polynomial stored on one device.  The current FIDESlib release is
single-GPU, so every poly has exactly one partition -- the class structure
keeps the multi-GPU extension point the paper describes.

The heavy lifting (NTT, element-wise modular arithmetic, automorphisms,
modulus switching) is delegated to :class:`~repro.core.limb.Limb`; this
module provides the cross-limb operations CKKS needs: rescaling, limb
dropping, base extension glue and CRT recomposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.core import modmath
from repro.core.limb import Limb, LimbFormat
from repro.core.memory import MemoryPool
from repro.core.rns import RNSBasis


@dataclass
class LimbPartition:
    """The limbs of an :class:`RNSPoly` that live on a single device."""

    device_id: int
    limbs: list[Limb] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.limbs)

    def __iter__(self):
        return iter(self.limbs)

    def append(self, limb: Limb) -> None:
        """Add a limb to this partition."""
        self.limbs.append(limb)

    def footprint_bytes(self, element_bytes: int = 8) -> int:
        """Return the device-memory footprint of this partition."""
        return sum(limb.ring_degree * element_bytes for limb in self.limbs)


class RNSPoly:
    """A polynomial in ``Z_Q[X]/(X^N + 1)`` stored limb-by-limb.

    Parameters
    ----------
    ring_degree:
        Polynomial degree bound ``N``.
    moduli:
        The RNS basis primes ``q_0 ... q_l`` currently attached to the
        polynomial (shrinks as levels are consumed).
    limbs:
        Optional initial limbs; zero limbs are created when omitted.
    device_id:
        Device the single partition is assigned to.
    """

    def __init__(
        self,
        ring_degree: int,
        moduli: Sequence[int],
        limbs: Sequence[Limb] | None = None,
        *,
        fmt: LimbFormat = LimbFormat.COEFFICIENT,
        device_id: int = 0,
        pool: MemoryPool | None = None,
    ) -> None:
        self.ring_degree = ring_degree
        self.moduli = list(int(q) for q in moduli)
        if limbs is None:
            limbs = [Limb.zero(ring_degree, q, fmt, pool=pool) for q in self.moduli]
        else:
            limbs = list(limbs)
            if len(limbs) != len(self.moduli):
                raise ValueError("limb count does not match modulus count")
            for limb, q in zip(limbs, self.moduli):
                if limb.modulus != q:
                    raise ValueError("limb modulus does not match basis")
        self.partition = LimbPartition(device_id=device_id, limbs=limbs)

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_int_coefficients(
        cls,
        ring_degree: int,
        moduli: Sequence[int],
        coefficients: Sequence[int],
        *,
        fmt: LimbFormat = LimbFormat.COEFFICIENT,
    ) -> "RNSPoly":
        """Build a poly from signed integer coefficients (length ``<= N``)."""
        coeffs = list(coefficients)
        if len(coeffs) > ring_degree:
            raise ValueError("too many coefficients for the ring degree")
        coeffs = coeffs + [0] * (ring_degree - len(coeffs))
        limbs = []
        for q in moduli:
            data = modmath.as_residue_array(
                np.array([int(c) % q for c in coeffs], dtype=object), q
            )
            limbs.append(Limb(q, data, LimbFormat.COEFFICIENT, ring_degree))
        poly = cls(ring_degree, moduli, limbs)
        if fmt is LimbFormat.EVALUATION:
            poly = poly.to_evaluation()
        return poly

    @classmethod
    def from_limb_arrays(
        cls,
        ring_degree: int,
        moduli: Sequence[int],
        arrays: Sequence[np.ndarray],
        fmt: LimbFormat,
    ) -> "RNSPoly":
        """Build a poly from raw per-limb residue arrays."""
        limbs = [
            Limb(q, arr, fmt, ring_degree) for q, arr in zip(moduli, arrays, strict=True)
        ]
        return cls(ring_degree, moduli, limbs)

    def copy(self) -> "RNSPoly":
        """Return a deep copy."""
        return RNSPoly(
            self.ring_degree,
            self.moduli,
            [limb.copy() for limb in self.limbs],
            device_id=self.partition.device_id,
        )

    # -- basic accessors -----------------------------------------------------

    @property
    def limbs(self) -> list[Limb]:
        """Return the limbs of the (single) partition."""
        return self.partition.limbs

    @property
    def level_count(self) -> int:
        """Return the number of limbs currently attached (ℓ + 1)."""
        return len(self.moduli)

    @property
    def fmt(self) -> LimbFormat:
        """Return the common representation of all limbs."""
        formats = {limb.fmt for limb in self.limbs}
        if len(formats) != 1:
            raise RuntimeError("limbs are in mixed formats")
        return next(iter(formats))

    def basis(self) -> RNSBasis:
        """Return the :class:`RNSBasis` for the current moduli."""
        return RNSBasis(self.moduli)

    def footprint_bytes(self, element_bytes: int = 8) -> int:
        """Return the memory footprint of the polynomial."""
        return self.partition.footprint_bytes(element_bytes)

    # -- representation ------------------------------------------------------

    def to_evaluation(self) -> "RNSPoly":
        """Return the polynomial with every limb in evaluation format."""
        return self._map(lambda limb: limb.to_evaluation())

    def to_coefficient(self) -> "RNSPoly":
        """Return the polynomial with every limb in coefficient format."""
        return self._map(lambda limb: limb.to_coefficient())

    def _map(self, fn) -> "RNSPoly":
        return RNSPoly(
            self.ring_degree,
            self.moduli,
            [fn(limb) for limb in self.limbs],
            device_id=self.partition.device_id,
        )

    # -- arithmetic ----------------------------------------------------------

    def _check_compatible(self, other: "RNSPoly") -> None:
        if self.ring_degree != other.ring_degree:
            raise ValueError("ring degrees differ")
        if self.moduli != other.moduli:
            raise ValueError(
                f"RNS bases differ ({len(self.moduli)} vs {len(other.moduli)} limbs)"
            )

    def add(self, other: "RNSPoly") -> "RNSPoly":
        """Return the element-wise sum (same basis and format required)."""
        self._check_compatible(other)
        return RNSPoly(
            self.ring_degree,
            self.moduli,
            [a.add(b) for a, b in zip(self.limbs, other.limbs)],
        )

    def sub(self, other: "RNSPoly") -> "RNSPoly":
        """Return the element-wise difference."""
        self._check_compatible(other)
        return RNSPoly(
            self.ring_degree,
            self.moduli,
            [a.sub(b) for a, b in zip(self.limbs, other.limbs)],
        )

    def negate(self) -> "RNSPoly":
        """Return the negated polynomial."""
        return self._map(lambda limb: limb.negate())

    def multiply(self, other: "RNSPoly") -> "RNSPoly":
        """Return the element-wise (evaluation-domain) product."""
        self._check_compatible(other)
        return RNSPoly(
            self.ring_degree,
            self.moduli,
            [a.multiply(b) for a, b in zip(self.limbs, other.limbs)],
        )

    def multiply_scalar(self, scalar: int | Sequence[int]) -> "RNSPoly":
        """Multiply by an integer constant, or by one constant per limb."""
        if isinstance(scalar, (int, np.integer)):
            scalars: Iterable[int] = [int(scalar)] * len(self.moduli)
        else:
            scalars = list(scalar)
            if len(scalars) != len(self.moduli):
                raise ValueError("need one scalar per limb")
        return RNSPoly(
            self.ring_degree,
            self.moduli,
            [limb.multiply_scalar(s) for limb, s in zip(self.limbs, scalars)],
        )

    def add_scalar(self, scalar: int | Sequence[int]) -> "RNSPoly":
        """Add an integer constant (or one constant per limb)."""
        if isinstance(scalar, (int, np.integer)):
            scalars: Iterable[int] = [int(scalar)] * len(self.moduli)
        else:
            scalars = list(scalar)
            if len(scalars) != len(self.moduli):
                raise ValueError("need one scalar per limb")
        return RNSPoly(
            self.ring_degree,
            self.moduli,
            [limb.add_scalar(s) for limb, s in zip(self.limbs, scalars)],
        )

    def automorphism(self, exponent: int) -> "RNSPoly":
        """Apply the Galois automorphism ``X -> X^exponent`` to every limb."""
        return self._map(lambda limb: limb.automorphism(exponent))

    # -- level management ----------------------------------------------------

    def drop_last_limbs(self, count: int = 1) -> "RNSPoly":
        """Return the polynomial with the last ``count`` limbs removed."""
        if count < 0 or count >= len(self.moduli):
            raise ValueError(f"cannot drop {count} of {len(self.moduli)} limbs")
        if count == 0:
            return self.copy()
        return RNSPoly(
            self.ring_degree,
            self.moduli[:-count],
            [limb.copy() for limb in self.limbs[:-count]],
        )

    def keep_limbs(self, count: int) -> "RNSPoly":
        """Return the polynomial truncated to its first ``count`` limbs."""
        if not 1 <= count <= len(self.moduli):
            raise ValueError(f"cannot keep {count} of {len(self.moduli)} limbs")
        return RNSPoly(
            self.ring_degree,
            self.moduli[:count],
            [limb.copy() for limb in self.limbs[:count]],
        )

    def select_limbs(self, indices: Sequence[int]) -> "RNSPoly":
        """Return a polynomial containing copies of the limbs at ``indices``.

        Used by hybrid key switching to restrict a key-switching key (stored
        over the full extended basis) to the limbs active at the current
        level plus the special limbs.
        """
        indices = list(indices)
        if not indices:
            raise ValueError("at least one limb index is required")
        moduli = [self.moduli[i] for i in indices]
        limbs = [self.limbs[i].copy() for i in indices]
        return RNSPoly(self.ring_degree, moduli, limbs)

    def rescale_last(self) -> "RNSPoly":
        """Divide by the last prime ``q_l`` and drop its limb (RNS rescale).

        For every remaining limb ``i``:
        ``c_i' = q_l^{-1} · (c_i - SwitchModulus(c_l)) mod q_i``.
        This is the computation FIDESlib fuses into its NTT kernels
        ("Rescale fusion", §III-F.5); here it is applied limb by limb in
        whatever format the polynomial is in, switching the last limb
        through the coefficient domain as required.
        """
        if len(self.moduli) < 2:
            raise ValueError("cannot rescale a single-limb polynomial")
        q_last = self.moduli[-1]
        last_coeff = self.limbs[-1].to_coefficient()
        out_limbs = []
        target_fmt = self.fmt
        for limb, q in zip(self.limbs[:-1], self.moduli[:-1]):
            switched = last_coeff.switch_modulus(q)
            if target_fmt is LimbFormat.EVALUATION:
                switched = switched.to_evaluation()
            diff = limb.sub(switched)
            inv = modmath.inv_mod(q_last % q, q)
            out_limbs.append(diff.multiply_scalar(inv))
        return RNSPoly(self.ring_degree, self.moduli[:-1], out_limbs)

    # -- conversions ---------------------------------------------------------

    def limb_arrays(self) -> list[np.ndarray]:
        """Return the raw residue arrays of every limb."""
        return [limb.data for limb in self.limbs]

    def to_int_coefficients(self, *, centered: bool = True) -> list[int]:
        """CRT-recombine the limbs into signed integer coefficients."""
        poly = self.to_coefficient()
        return poly.basis().compose(poly.limb_arrays(), centered=centered)

    def __len__(self) -> int:
        return self.ring_degree


__all__ = ["RNSPoly", "LimbPartition"]
