"""``RNSPoly`` and ``LimbPartition``: the polynomial containers of Figure 2.

An :class:`RNSPoly` is a degree-``N`` polynomial decomposed over an RNS
basis ``B = {q_0, ..., q_l}``.  Since the limb-batching refactor its data
plane is a single :class:`~repro.core.limb_stack.LimbStack` -- one flat
``(num_limbs, N)`` device buffer (the §III-D flattened allocation
strategy) -- and every cross-limb operation (element-wise arithmetic,
rescaling, limb dropping, base-extension glue, CRT recomposition, NTT)
executes as vectorized broadcast expressions with no per-limb Python loop,
matching the batched kernels of §III-F.

The legacy per-limb surface is preserved: ``poly.limbs[i]`` returns a
zero-copy :class:`~repro.core.limb.Limb` view into the stack row, and
:class:`LimbPartition` still models the portion of the polynomial stored
on one device (the multi-GPU extension point the paper describes; the
current release is single-GPU, so every poly has exactly one partition).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.core import modmath
from repro.core.dispatch import get_dispatcher
from repro.core.limb import Limb, LimbFormat
from repro.core.limb_stack import LimbStack
from repro.core.memory import MemoryPool
from repro.core.ntt import get_engine, get_stacked_engine, record_staged_transform
from repro.core.rns import RNSBasis
from repro.gpu.kernel import MODADD_OPS, MODMUL_OPS

_DISPATCH = get_dispatcher()


@lru_cache(maxsize=None)
def _rescale_inverses(moduli: tuple[int, ...]) -> tuple[int, ...]:
    """``(q_l^{-1} mod q_i)`` for every limb kept by a rescale (cached)."""
    q_last = moduli[-1]
    return tuple(modmath.inv_mod(q_last % q, q) for q in moduli[:-1])


@dataclass
class LimbPartition:
    """The limbs of an :class:`RNSPoly` that live on a single device."""

    device_id: int
    limbs: list[Limb] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.limbs)

    def __iter__(self):
        return iter(self.limbs)

    def append(self, limb: Limb) -> None:
        """Add a limb to this partition."""
        self.limbs.append(limb)

    def footprint_bytes(self, element_bytes: int | None = None) -> int:
        """Return the device-memory footprint of this partition."""
        if element_bytes is None:
            element_bytes = 8
        return sum(limb.ring_degree * element_bytes for limb in self.limbs)


class RNSPoly:
    """A polynomial in ``Z_Q[X]/(X^N + 1)`` stored as a flat limb stack.

    Parameters
    ----------
    ring_degree:
        Polynomial degree bound ``N``.
    moduli:
        The RNS basis primes ``q_0 ... q_l`` currently attached to the
        polynomial (shrinks as levels are consumed).
    limbs:
        Optional initial limbs; zero limbs are created when omitted.  All
        limbs must share one representation (format is tracked per
        polynomial, which is what lets every cross-limb kernel batch).
    device_id:
        Device the single partition is assigned to.
    """

    def __init__(
        self,
        ring_degree: int,
        moduli: Sequence[int],
        limbs: Sequence[Limb] | None = None,
        *,
        fmt: LimbFormat = LimbFormat.COEFFICIENT,
        device_id: int = 0,
        pool: MemoryPool | None = None,
    ) -> None:
        self.ring_degree = ring_degree
        self.moduli = list(int(q) for q in moduli)
        self.device_id = device_id
        if limbs is None:
            self._fmt = fmt
            self._stack = LimbStack.zeros(ring_degree, self.moduli, pool=pool)
        else:
            limbs = list(limbs)
            if len(limbs) != len(self.moduli):
                raise ValueError("limb count does not match modulus count")
            for limb, q in zip(limbs, self.moduli):
                if limb.modulus != q:
                    raise ValueError("limb modulus does not match basis")
            formats = {limb.fmt for limb in limbs}
            if len(formats) > 1:
                raise ValueError("limbs are in mixed formats")
            self._fmt = next(iter(formats)) if formats else fmt
            self._stack = LimbStack.from_rows(
                self.moduli, [limb.data for limb in limbs], pool=pool
            )

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_stack(
        cls, stack: LimbStack, fmt: LimbFormat, *, device_id: int = 0
    ) -> "RNSPoly":
        """Adopt an existing limb stack without copying (internal fast path)."""
        poly = object.__new__(cls)
        poly.ring_degree = stack.ring_degree
        poly.moduli = list(stack.moduli)
        poly.device_id = device_id
        poly._fmt = fmt
        poly._stack = stack
        return poly

    @classmethod
    def from_int_coefficients(
        cls,
        ring_degree: int,
        moduli: Sequence[int],
        coefficients: Sequence[int],
        *,
        fmt: LimbFormat = LimbFormat.COEFFICIENT,
    ) -> "RNSPoly":
        """Build a poly from signed integer coefficients (length ``<= N``)."""
        coeffs = [int(c) for c in coefficients]
        if len(coeffs) > ring_degree:
            raise ValueError("too many coefficients for the ring degree")
        coeffs = coeffs + [0] * (ring_degree - len(coeffs))
        values = np.array(coeffs, dtype=object)
        # One exact object-array reduction per limb replaces the old
        # per-coefficient Python loop; the rows land canonical by
        # construction, so the stack adopts them without re-validation.
        rows = np.stack([values % int(q) for q in moduli])
        if modmath.all_fast_moduli(moduli):
            rows = rows.astype(np.uint64)
        poly = cls.from_stack(LimbStack(moduli, rows), LimbFormat.COEFFICIENT)
        if fmt is LimbFormat.EVALUATION:
            poly = poly.to_evaluation()
        return poly

    @classmethod
    def from_limb_arrays(
        cls,
        ring_degree: int,
        moduli: Sequence[int],
        arrays: Sequence[np.ndarray],
        fmt: LimbFormat,
    ) -> "RNSPoly":
        """Build a poly from raw per-limb residue arrays."""
        if len(arrays) != len(list(moduli)):
            raise ValueError("array count does not match modulus count")
        for arr in arrays:
            if len(np.asarray(arr).ravel()) != ring_degree:
                raise ValueError("limb data length does not match ring degree")
        return cls.from_stack(LimbStack.from_rows(moduli, arrays), fmt)

    def copy(self) -> "RNSPoly":
        """Return a deep copy (charged to the same memory pool)."""
        return RNSPoly.from_stack(self._stack.copy(), self._fmt, device_id=self.device_id)

    # -- basic accessors -----------------------------------------------------

    @property
    def stack(self) -> LimbStack:
        """The flat ``(num_limbs, N)`` limb-stack storage."""
        return self._stack

    @property
    def limbs(self) -> list[Limb]:
        """Zero-copy per-limb views into the stack (legacy API)."""
        return [
            self._stack.limb_view(i, self._fmt) for i in range(len(self.moduli))
        ]

    @property
    def partition(self) -> LimbPartition:
        """The (single) device partition, wrapping the limb views."""
        return LimbPartition(device_id=self.device_id, limbs=self.limbs)

    @property
    def level_count(self) -> int:
        """Return the number of limbs currently attached (ℓ + 1)."""
        return len(self.moduli)

    @property
    def fmt(self) -> LimbFormat:
        """Return the common representation of all limbs."""
        return self._fmt

    def basis(self) -> RNSBasis:
        """Return the :class:`RNSBasis` for the current moduli."""
        return RNSBasis(self.moduli)

    def footprint_bytes(self, element_bytes: int | None = None) -> int:
        """Return the memory footprint of the polynomial.

        Defaults to the stack buffer's own element width (16 bytes on the
        double-word backend, 8 otherwise).
        """
        return self._stack.footprint_bytes(element_bytes)

    # -- representation ------------------------------------------------------

    def to_evaluation(self) -> "RNSPoly":
        """Return the polynomial with every limb in evaluation format.

        All limbs are transformed in one stacked NTT call.
        """
        if self._fmt is LimbFormat.EVALUATION:
            return self.copy()
        engine = get_stacked_engine(self.ring_degree, tuple(self.moduli))
        data = engine.forward(self._stack.data)
        return RNSPoly.from_stack(
            LimbStack(self.moduli, data, pool=self._stack.buffer.pool),
            LimbFormat.EVALUATION,
            device_id=self.device_id,
        )

    def to_coefficient(self) -> "RNSPoly":
        """Return the polynomial with every limb in coefficient format."""
        if self._fmt is LimbFormat.COEFFICIENT:
            return self.copy()
        engine = get_stacked_engine(self.ring_degree, tuple(self.moduli))
        data = engine.inverse(self._stack.data)
        return RNSPoly.from_stack(
            LimbStack(self.moduli, data, pool=self._stack.buffer.pool),
            LimbFormat.COEFFICIENT,
            device_id=self.device_id,
        )

    # -- arithmetic ----------------------------------------------------------

    def _check_compatible(self, other: "RNSPoly") -> None:
        if self.ring_degree != other.ring_degree:
            raise ValueError("ring degrees differ")
        if self.moduli != other.moduli:
            raise ValueError(
                f"RNS bases differ ({len(self.moduli)} vs {len(other.moduli)} limbs)"
            )
        if self._fmt != other._fmt:
            raise ValueError(f"limb formats differ: {self._fmt} vs {other._fmt}")

    def _wrap(self, stack: LimbStack, fmt: LimbFormat | None = None) -> "RNSPoly":
        return RNSPoly.from_stack(
            stack, self._fmt if fmt is None else fmt, device_id=self.device_id
        )

    def add(self, other: "RNSPoly") -> "RNSPoly":
        """Return the element-wise sum (same basis and format required)."""
        self._check_compatible(other)
        return self._wrap(self._stack.add(other._stack))

    def sub(self, other: "RNSPoly") -> "RNSPoly":
        """Return the element-wise difference."""
        self._check_compatible(other)
        return self._wrap(self._stack.sub(other._stack))

    def negate(self) -> "RNSPoly":
        """Return the negated polynomial."""
        return self._wrap(self._stack.negate())

    def multiply(self, other: "RNSPoly") -> "RNSPoly":
        """Return the element-wise (evaluation-domain) product."""
        self._check_compatible(other)
        if self._fmt is not LimbFormat.EVALUATION:
            raise ValueError("element-wise limb products require evaluation format")
        return self._wrap(self._stack.multiply(other._stack))

    def _scalars_per_limb(self, scalar: int | Sequence[int]) -> list[int]:
        if isinstance(scalar, (int, np.integer)):
            return [int(scalar)] * len(self.moduli)
        scalars = [int(s) for s in scalar]
        if len(scalars) != len(self.moduli):
            raise ValueError("need one scalar per limb")
        return scalars

    @staticmethod
    def multiply_accumulate(pairs: Sequence[tuple["RNSPoly", "RNSPoly"]]) -> "RNSPoly":
        """Fused ``Σ a_i ⊙ b_i`` over evaluation-format polynomials.

        The dot-product fusion of §III-F.5: raw products accumulate in the
        wide uint64 lane and reduce once, instead of a reduce per multiply
        and per add.  All operands must share one basis and be in
        evaluation format.
        """
        if not pairs:
            raise ValueError("multiply_accumulate needs at least one pair")
        first = pairs[0][0]
        for a, b in pairs:
            first._check_compatible(a)
            first._check_compatible(b)
        if first.fmt is not LimbFormat.EVALUATION:
            raise ValueError("element-wise limb products require evaluation format")
        data = modmath.stack_dot_mod(
            [(a._stack.data, b._stack.data) for a, b in pairs],
            first._stack.moduli_col,
        )
        return first._wrap(
            LimbStack(first.moduli, data, pool=first._stack.buffer.pool)
        )

    def multiply_scalar(self, scalar: int | Sequence[int]) -> "RNSPoly":
        """Multiply by an integer constant, or by one constant per limb."""
        return self._wrap(self._stack.multiply_scalars(self._scalars_per_limb(scalar)))

    def add_scalar(self, scalar: int | Sequence[int]) -> "RNSPoly":
        """Add an integer constant (or one constant per limb).

        In coefficient format the constant is added to the degree-0
        coefficient; in evaluation format a constant polynomial evaluates
        to the same value everywhere, so it is added to every element.
        """
        scalars = self._scalars_per_limb(scalar)
        if self._fmt is LimbFormat.EVALUATION:
            return self._wrap(self._stack.add_scalars_broadcast(scalars))
        return self._wrap(self._stack.add_scalars_at(scalars, 0))

    def automorphism(self, exponent: int) -> "RNSPoly":
        """Apply the Galois automorphism ``X -> X^exponent`` to every limb.

        The permutation is defined on the coefficient representation;
        polynomials in evaluation format are routed through a stacked
        iNTT/NTT round trip exactly like the GPU ``Automorph`` kernel path
        used before key switching.
        """
        if self._fmt is LimbFormat.EVALUATION:
            return self.to_coefficient().automorphism(exponent).to_evaluation()
        return self._wrap(self._stack.automorphism_coeff(exponent))

    # -- level management ----------------------------------------------------

    def drop_last_limbs(self, count: int = 1) -> "RNSPoly":
        """Return the polynomial with the last ``count`` limbs removed."""
        if count < 0 or count >= len(self.moduli):
            raise ValueError(f"cannot drop {count} of {len(self.moduli)} limbs")
        if count == 0:
            return self.copy()
        return self._wrap(self._stack.head(len(self.moduli) - count))

    def keep_limbs(self, count: int) -> "RNSPoly":
        """Return the polynomial truncated to its first ``count`` limbs."""
        if not 1 <= count <= len(self.moduli):
            raise ValueError(f"cannot keep {count} of {len(self.moduli)} limbs")
        return self._wrap(self._stack.head(count))

    def select_limbs(self, indices: Sequence[int]) -> "RNSPoly":
        """Return a polynomial containing copies of the limbs at ``indices``.

        Used by hybrid key switching to restrict a key-switching key (stored
        over the full extended basis) to the limbs active at the current
        level plus the special limbs.
        """
        indices = list(indices)
        if not indices:
            raise ValueError("at least one limb index is required")
        return self._wrap(self._stack.take(indices))

    def rescale_last(self) -> "RNSPoly":
        """Divide by the last prime ``q_l`` and drop its limb (RNS rescale).

        For every remaining limb ``i``:
        ``c_i' = q_l^{-1} · (c_i - SwitchModulus(c_l)) mod q_i``.
        This is the computation FIDESlib fuses into its NTT kernels
        ("Rescale fusion", §III-F.5).  Here the switched last limb is
        broadcast into every remaining modulus, transformed with one
        stacked NTT when needed, and folded in with batched subtract and
        scalar-multiply kernels -- no per-limb loop.
        """
        return RNSPoly.rescale_last_many([self])[0]

    @staticmethod
    def rescale_last_many(polys: Sequence["RNSPoly"]) -> list["RNSPoly"]:
        """Rescale several same-basis polynomials in fused stacked kernels.

        The two components of a ciphertext (and the many polys of a fused
        pipeline stage) share every transform: their switched last limbs
        and NTT passes are concatenated row-wise into single stacked calls,
        cutting the per-call overhead without changing any residue -- the
        per-row math is exactly :meth:`rescale_last`.
        """
        if not polys:
            return []
        first = polys[0]
        for poly in polys[1:]:
            if poly.moduli != first.moduli or poly.fmt is not first.fmt:
                raise ValueError("fused rescale requires matching bases and formats")
        if len(first.moduli) < 2:
            raise ValueError("cannot rescale a single-limb polynomial")
        n = first.ring_degree
        q_last = first.moduli[-1]
        target_moduli = first.moduli[:-1]
        keep = len(target_moduli)
        target_col = modmath.moduli_column(target_moduli)
        is_eval = first.fmt is LimbFormat.EVALUATION
        inverses = _rescale_inverses(tuple(first.moduli))
        with _DISPATCH.suppressed():
            last_rows = np.stack([np.asarray(p._stack.data[-1]) for p in polys])
            if is_eval:
                last_rows = get_stacked_engine(
                    n, (q_last,) * len(polys)
                ).inverse(last_rows, consume=True)
            # The batched modulus switch lands every poly's block directly
            # in the (P*keep, N) layout the tail consumes -- no per-row
            # loop, no vstack staging copy.
            switched = modmath.stack_switch_modulus_many(
                last_rows, q_last, target_col
            )
            if is_eval:
                switched = get_stacked_engine(
                    n, tuple(target_moduli) * len(polys)
                ).forward(switched, consume=True)
            # The subtract/scale tail folds each poly's head limbs into its
            # block of ``switched`` in place (row math identical to the old
            # fused-column form, without staging the heads into one buffer).
            for i, poly in enumerate(polys):
                seg = switched[i * keep : (i + 1) * keep]
                head = modmath.coerce_stack(poly._stack.data[:-1], target_col)
                modmath.stack_sub_mod(head, seg, target_col, out=seg)
                modmath.stack_scalar_mod(seg, inverses, target_col, out=seg)
            out = switched
        # The execution plane sees the kernels a GPU backend launches per
        # component: an iNTT of the dropped limb plus an NTT over the kept
        # limbs with the switch/subtract/scale arithmetic fused in
        # ("Rescale fusion", §III-F.5); in coefficient format only the
        # fused element-wise kernel remains.
        if _DISPATCH.recording:
            executable = _DISPATCH.executable_recording
            # Per-polynomial slices keep the fused components parallel in
            # the dependency DAG (disjoint rows of the shared buffers).
            for i, poly in enumerate(polys):
                kept = out[i * keep : (i + 1) * keep]
                dropped = last_rows[i : i + 1]
                if is_eval:
                    intt_replay = ntt_replay = None
                    if executable:

                        def intt_replay(reads, writes, _n=n, _q=q_last):
                            res = get_stacked_engine(_n, (_q,)).inverse(reads[0])
                            np.copyto(writes[0], res)

                        def ntt_replay(
                            reads, writes, _n=n, _q=q_last,
                            _tm=tuple(target_moduli), _col=target_col,
                            _inv=inverses,
                        ):
                            sw = modmath.stack_switch_modulus_many(
                                reads[0], _q, _col, out=writes[0]
                            )
                            res = get_stacked_engine(_n, _tm).forward(
                                sw, consume=True
                            )
                            if res is not sw:
                                np.copyto(sw, res)
                            head = modmath.coerce_stack(reads[1], _col)
                            modmath.stack_sub_mod(head, sw, _col, out=sw)
                            modmath.stack_scalar_mod(sw, _inv, _col, out=sw)

                    # Stage-granular recording unbundles the pipeline into
                    # the launches an unfused GPU rescale makes: per-stage
                    # iNTT, a modulus-switch launch, per-stage NTT, then
                    # the subtract/scale tail as its own launch.
                    staged = (
                        _DISPATCH.stage_granular
                        and get_stacked_engine(n, (q_last,)).fast
                        and get_stacked_engine(n, tuple(target_moduli)).fast
                    )
                    if staged:
                        switch_replay = tail_launch = None
                        if executable:

                            def switch_replay(
                                reads, writes, _q=q_last, _col=target_col,
                            ):
                                modmath.stack_switch_modulus_many(
                                    reads[0], _q, _col, out=writes[0]
                                )

                            def tail_launch(
                                reads, writes, _col=target_col, _inv=inverses,
                            ):
                                dst = writes[0]
                                if not np.shares_memory(reads[0], dst):
                                    np.copyto(dst, reads[0])
                                head = modmath.coerce_stack(reads[1], _col)
                                modmath.stack_sub_mod(head, dst, _col, out=dst)
                                modmath.stack_scalar_mod(
                                    dst, _inv, _col, out=dst
                                )

                        record_staged_transform(
                            "intt", n, (q_last,),
                            poly._stack.data[-1:], dropped,
                            executable=executable,
                        )
                        _DISPATCH.elementwise(
                            "rescale-switch", reads=(dropped,), writes=(kept,),
                            ops_per_element=MODMUL_OPS, replay=switch_replay,
                        )
                        record_staged_transform(
                            "ntt", n, tuple(target_moduli), kept, kept,
                            executable=executable,
                        )
                        _DISPATCH.elementwise(
                            "rescale-tail",
                            reads=(kept, poly._stack.data[:-1]),
                            writes=(kept,),
                            ops_per_element=MODMUL_OPS + MODADD_OPS,
                            replay=tail_launch,
                        )
                    else:
                        _DISPATCH.transform(
                            "intt", 1, reads=(poly._stack.data[-1:],),
                            writes=(dropped,), cols=n,
                            fused_ops_per_element=MODADD_OPS,
                            replay=intt_replay,
                        )
                        _DISPATCH.transform(
                            "ntt", keep, reads=(dropped, poly._stack.data[:-1]),
                            writes=(kept,), cols=n,
                            fused_ops_per_element=MODMUL_OPS + MODADD_OPS,
                            replay=ntt_replay,
                        )
                else:
                    fused_replay = None
                    if executable:

                        def fused_replay(
                            reads, writes, _q=q_last, _col=target_col,
                            _inv=inverses,
                        ):
                            sw = modmath.stack_switch_modulus_many(
                                reads[0], _q, _col, out=writes[0]
                            )
                            head = modmath.coerce_stack(reads[1], _col)
                            modmath.stack_sub_mod(head, sw, _col, out=sw)
                            modmath.stack_scalar_mod(sw, _inv, _col, out=sw)

                    _DISPATCH.elementwise(
                        "rescale-fused",
                        reads=(poly._stack.data[-1:], poly._stack.data[:-1]),
                        writes=(kept,), ops_per_element=MODMUL_OPS + MODADD_OPS,
                        replay=fused_replay,
                    )
        return [
            poly._wrap(
                LimbStack(
                    target_moduli,
                    out[i * keep : (i + 1) * keep],
                    pool=poly._stack.buffer.pool,
                )
            )
            for i, poly in enumerate(polys)
        ]

    # -- conversions ---------------------------------------------------------

    def limb_arrays(self) -> list[np.ndarray]:
        """Return the raw residue arrays of every limb (zero-copy views)."""
        return self._stack.rows()

    def to_int_coefficients(self, *, centered: bool = True) -> list[int]:
        """CRT-recombine the limbs into signed integer coefficients."""
        poly = self.to_coefficient()
        return poly.basis().compose(poly.limb_arrays(), centered=centered)

    def __len__(self) -> int:
        return self.ring_degree


__all__ = ["RNSPoly", "LimbPartition"]
