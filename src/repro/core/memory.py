"""Stream-ordered device-memory pool analogue.

FIDESlib manages GPU buffers through ``VectorGPU`` objects that allocate
asynchronously from CUDA's stream-ordered memory pool at construction and
free at destruction (RAII).  There is no physical device here, but the
allocation discipline still matters: the performance model charges
allocation traffic, and the tests assert that the stack-of-arrays layout
produces the expected footprint and that no buffers leak.

:class:`MemoryPool` tracks live allocations, bytes in use, peak usage and a
simple internal-fragmentation statistic comparing the stack-of-arrays
layout with a flattened 2-D allocation (the trade-off discussed in
§III-D of the paper).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field


class OutOfDeviceMemory(RuntimeError):
    """Raised when an allocation would exceed the configured device capacity."""


@dataclass
class AllocationRecord:
    """A single live allocation inside a :class:`MemoryPool`."""

    handle: int
    nbytes: int
    tag: str
    stream: int


@dataclass
class MemoryPool:
    """Accounting model of the CUDA stream-ordered memory allocator.

    Parameters
    ----------
    capacity_bytes:
        Device memory capacity; ``None`` means unbounded (useful in tests).
    granularity:
        Allocation granularity in bytes; requests are rounded up to a
        multiple of this value, which is what produces internal
        fragmentation for small buffers.
    """

    capacity_bytes: int | None = None
    granularity: int = 256
    bytes_in_use: int = 0
    peak_bytes: int = 0
    requested_bytes: int = 0
    allocation_count: int = 0
    free_count: int = 0
    _live: dict[int, AllocationRecord] = field(default_factory=dict)
    _handles: itertools.count = field(default_factory=itertools.count)

    def allocate(self, nbytes: int, *, tag: str = "", stream: int = 0) -> int:
        """Allocate ``nbytes`` and return an opaque handle."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        rounded = self._round_up(nbytes)
        if self.capacity_bytes is not None and self.bytes_in_use + rounded > self.capacity_bytes:
            raise OutOfDeviceMemory(
                f"allocation of {rounded} bytes exceeds capacity "
                f"({self.bytes_in_use}/{self.capacity_bytes} in use)"
            )
        handle = next(self._handles)
        self._live[handle] = AllocationRecord(handle, rounded, tag, stream)
        self.bytes_in_use += rounded
        self.requested_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.bytes_in_use)
        self.allocation_count += 1
        return handle

    def free(self, handle: int) -> None:
        """Free an allocation (idempotent frees raise, as double-free is a bug)."""
        record = self._live.pop(handle, None)
        if record is None:
            raise KeyError(f"unknown or already-freed allocation handle {handle}")
        self.bytes_in_use -= record.nbytes
        self.free_count += 1

    def live_allocations(self) -> list[AllocationRecord]:
        """Return records for every allocation that has not been freed."""
        return list(self._live.values())

    def internal_fragmentation(self) -> float:
        """Return the fraction of allocated bytes lost to granularity rounding."""
        allocated = sum(r.nbytes for r in self._live.values())
        if allocated == 0:
            return 0.0
        requested = sum(
            min(r.nbytes, r.nbytes - (r.nbytes - self._round_down(r.nbytes)))
            for r in self._live.values()
        )
        # Requested bytes are not tracked per record once rounded; derive the
        # bound from the granularity instead.
        waste_bound = len(self._live) * (self.granularity - 1)
        return min(1.0, waste_bound / allocated) if allocated else 0.0

    def reset_statistics(self) -> None:
        """Reset counters without touching live allocations."""
        self.peak_bytes = self.bytes_in_use
        self.requested_bytes = 0
        self.allocation_count = len(self._live)
        self.free_count = 0

    def _round_up(self, nbytes: int) -> int:
        g = self.granularity
        return ((nbytes + g - 1) // g) * g

    def _round_down(self, nbytes: int) -> int:
        g = self.granularity
        return (nbytes // g) * g


#: Default process-wide pool, mirroring the default ``cudaMemPool_t``.
default_pool = MemoryPool()


__all__ = ["MemoryPool", "AllocationRecord", "OutOfDeviceMemory", "default_pool"]
