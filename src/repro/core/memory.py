"""Stream-ordered device-memory pool analogue.

FIDESlib manages GPU buffers through ``VectorGPU`` objects that allocate
asynchronously from CUDA's stream-ordered memory pool at construction and
free at destruction (RAII).  There is no physical device here, but the
allocation discipline still matters: the performance model charges
allocation traffic, and the tests assert that both allocation strategies
of §III-D -- one buffer per limb ("array per limb") versus a single
flattened ``(L, N)`` buffer per polynomial ("flattened") -- produce the
expected footprints and that no buffers leak.

:class:`MemoryPool` tracks live allocations, bytes in use, peak usage and
the exact internal fragmentation (granularity rounding waste), broken down
per allocation strategy so the §III-D comparison is measured rather than
modeled.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

#: The two §III-D allocation strategies a record can be charged under.
STRATEGY_ARRAY_PER_LIMB = "array-per-limb"
STRATEGY_FLATTENED = "flattened"


class OutOfDeviceMemory(RuntimeError):
    """Raised when an allocation would exceed the configured device capacity."""


class FusedFootprintError(OutOfDeviceMemory):
    """A fused ``(B·L, N)`` allocation would not fit the pool budget.

    Raised *before* any row copying starts (by
    :meth:`repro.core.limb_stack.LimbStack.fuse` and
    :meth:`repro.ckks.batch.CiphertextBatch.from_ciphertexts`) so callers
    such as the serving plane's batching policy can react -- typically by
    draining fewer requests per fused batch -- instead of dying on a bare
    :class:`OutOfDeviceMemory` mid-copy.
    """


@dataclass
class AllocationRecord:
    """A single live allocation inside a :class:`MemoryPool`."""

    handle: int
    nbytes: int
    requested: int
    tag: str
    stream: int
    strategy: str = STRATEGY_ARRAY_PER_LIMB


@dataclass
class MemoryPool:
    """Accounting model of the CUDA stream-ordered memory allocator.

    Parameters
    ----------
    capacity_bytes:
        Device memory capacity; ``None`` means unbounded (useful in tests).
    granularity:
        Allocation granularity in bytes; requests are rounded up to a
        multiple of this value, which is what produces internal
        fragmentation for small buffers.
    """

    capacity_bytes: int | None = None
    granularity: int = 256
    bytes_in_use: int = 0
    peak_bytes: int = 0
    requested_bytes: int = 0
    allocation_count: int = 0
    free_count: int = 0
    #: Optional charge-time hook ``(pool, nbytes, tag) -> None`` consulted
    #: before every allocation is admitted.  A hook may raise
    #: :class:`OutOfDeviceMemory` to deny the charge -- this is the fault
    #: injection seam :class:`repro.serve.faults.FaultInjector` installs to
    #: produce deterministic OOM windows on the simulated clock.
    charge_hook: Callable | None = None
    _live: dict[int, AllocationRecord] = field(default_factory=dict)
    _handles: itertools.count = field(default_factory=itertools.count)

    def allocate(
        self,
        nbytes: int,
        *,
        tag: str = "",
        stream: int = 0,
        strategy: str = STRATEGY_ARRAY_PER_LIMB,
    ) -> int:
        """Allocate ``nbytes`` and return an opaque handle."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if self.charge_hook is not None:
            self.charge_hook(self, nbytes, tag)
        rounded = self._round_up(nbytes)
        if self.capacity_bytes is not None and self.bytes_in_use + rounded > self.capacity_bytes:
            raise OutOfDeviceMemory(
                f"allocation of {rounded} bytes exceeds capacity "
                f"({self.bytes_in_use}/{self.capacity_bytes} in use)"
            )
        handle = next(self._handles)
        self._live[handle] = AllocationRecord(handle, rounded, nbytes, tag, stream, strategy)
        self.bytes_in_use += rounded
        self.requested_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.bytes_in_use)
        self.allocation_count += 1
        return handle

    def free(self, handle: int) -> None:
        """Free an allocation (idempotent frees raise, as double-free is a bug)."""
        record = self._live.pop(handle, None)
        if record is None:
            raise KeyError(f"unknown or already-freed allocation handle {handle}")
        self.bytes_in_use -= record.nbytes
        self.free_count += 1

    def free_bytes(self) -> int | None:
        """Remaining capacity in bytes, or ``None`` for an unbounded pool."""
        if self.capacity_bytes is None:
            return None
        return self.capacity_bytes - self.bytes_in_use

    def utilization(self) -> float:
        """Fraction of the capacity currently in use (0.0 when unbounded).

        The serving plane's admission controller sheds load when this
        crosses its configured high watermark.
        """
        if not self.capacity_bytes:
            return 0.0
        return self.bytes_in_use / self.capacity_bytes

    def fits(self, *sizes: int) -> bool:
        """Whether allocations of ``sizes`` bytes would all fit right now.

        Each size is rounded up to the pool granularity exactly as
        :meth:`allocate` would round it, so a ``True`` answer means the
        allocations cannot raise :class:`OutOfDeviceMemory` (absent
        concurrent allocations).  Unbounded pools always fit.
        """
        if self.capacity_bytes is None:
            return True
        needed = sum(self._round_up(s) for s in sizes)
        return self.bytes_in_use + needed <= self.capacity_bytes

    def live_allocations(self) -> list[AllocationRecord]:
        """Return records for every allocation that has not been freed."""
        return list(self._live.values())

    def internal_fragmentation(self) -> float:
        """Return the exact fraction of allocated bytes lost to rounding.

        Every :class:`AllocationRecord` remembers the bytes the caller
        requested, so the waste is ``allocated - requested`` rather than the
        granularity worst-case bound.
        """
        allocated = sum(r.nbytes for r in self._live.values())
        if allocated == 0:
            return 0.0
        requested = sum(r.requested for r in self._live.values())
        return (allocated - requested) / allocated

    def bytes_by_strategy(self) -> dict[str, int]:
        """Return live allocated bytes grouped by §III-D allocation strategy."""
        totals: dict[str, int] = {}
        for record in self._live.values():
            totals[record.strategy] = totals.get(record.strategy, 0) + record.nbytes
        return totals

    def fragmentation_by_strategy(self) -> dict[str, float]:
        """Return the exact internal fragmentation of each allocation strategy."""
        allocated: dict[str, int] = {}
        requested: dict[str, int] = {}
        for record in self._live.values():
            allocated[record.strategy] = allocated.get(record.strategy, 0) + record.nbytes
            requested[record.strategy] = requested.get(record.strategy, 0) + record.requested
        return {
            strategy: (allocated[strategy] - requested[strategy]) / allocated[strategy]
            for strategy in allocated
            if allocated[strategy] > 0
        }

    def reset_peak(self) -> int:
        """Rewind the high-water mark to current usage; returns the old peak.

        The observability plane calls this at drain start so
        :attr:`peak_bytes` reads as the *per-drain* peak at drain end
        (sampled into the ``serve_drain_peak_bytes`` histogram); lifetime
        counters are untouched.
        """
        previous = self.peak_bytes
        self.peak_bytes = self.bytes_in_use
        return previous

    def reset_statistics(self) -> None:
        """Reset counters without touching live allocations."""
        self.peak_bytes = self.bytes_in_use
        self.requested_bytes = sum(r.requested for r in self._live.values())
        self.allocation_count = len(self._live)
        self.free_count = 0

    def _round_up(self, nbytes: int) -> int:
        g = self.granularity
        return ((nbytes + g - 1) // g) * g


#: Default process-wide pool, mirroring the default ``cudaMemPool_t``.
default_pool = MemoryPool()


__all__ = [
    "MemoryPool",
    "AllocationRecord",
    "OutOfDeviceMemory",
    "FusedFootprintError",
    "default_pool",
    "STRATEGY_ARRAY_PER_LIMB",
    "STRATEGY_FLATTENED",
]
