"""The execution plane: kernel-trace dispatch from the real data plane.

Module map (data plane → dispatcher → trace → scheduler / cost model)
---------------------------------------------------------------------

::

    repro.core.modmath ───┐  stack_* kernels auto-emit on execution
    repro.core.limb_stack ┤  automorphism / copy kernels
    repro.core.ntt ───────┤  StackedNTTEngine transforms (per limb batch)
    repro.core.rns ───────┤  BaseConverter.convert_stack
    repro.ckks.keyswitch ─┤  fused ModUp / inner-product / ModDown emits
    repro.ckks.evaluator ─┘  operation scopes (hmult, rescale, ...)
                │
                ▼
    repro.core.dispatch.Dispatcher      (this module)
        eager execution as before; optionally records every batched
        data-plane operation as a repro.gpu.kernel.Kernel descriptor
        with real shapes, an operation-scope tag and data-dependency
        edges (which limb-stack buffer each kernel reads/writes)
                │
                ▼
    repro.core.dispatch.KernelTrace
        the recorded kernel stream: Kernel descriptors + dependency DAG
                │
                ├──▶ repro.gpu.stream.StreamScheduler.schedule(...,
                │        dependencies=trace.dependencies())
                │    dependency-aware multi-stream event simulation
                │
                ├──▶ repro.perf.trace_model.TraceCostModel
                │    prices the trace (roofline timing + scheduling)
                │
                └──▶ repro.perf.calibration.reconcile_trace
                     cross-validates the trace against the hand-built
                     repro.perf.costmodel.CKKSOperationCosts kernels

Every batched data-plane operation routes through the module-level
:class:`Dispatcher` singleton (:func:`get_dispatcher`).  Execution stays
eager and bit-identical whether or not a trace is being recorded: the
dispatcher only *observes*.  Recording is enabled with::

    with get_dispatcher().record() as trace:
        ct3 = evaluator.multiply(ct1, ct2)
    trace.kernel_count            # kernels the GPU backend would launch
    trace.dependencies()          # DAG edges for the stream scheduler

Kernels are recorded at **GPU launch granularity**, not NumPy expression
granularity: a stacked NTT is one kernel per limb batch even though it
executes as ``log2 N`` broadcast expressions, and the fused key-switching
routines emit the per-digit / per-component kernels a GPU backend would
launch (with shapes taken from the live arrays).  Composite emitters wrap
their internal computation in :meth:`Dispatcher.suppressed` so building
blocks are not double-counted.

Dependencies are derived from buffer identity at byte-interval
granularity: views resolve to their owning allocation plus the byte range
they cover, and each kernel's dependency set is the set of last writers
of every range it touches.  Two kernels touching *disjoint* slices of one
fused allocation (e.g. the per-component halves of a fused ModDown
output) therefore stay independent in the DAG, while a kernel reading a
row of a stack another kernel wrote is correctly ordered after it.
Buffers are tracked through weak references, so recording never extends
the lifetime of the arrays it observes.  :meth:`Dispatcher.link`
propagates writer information across pure data movement (``vstack``
copies, scatter assembly) that is not modelled as a kernel.

Executable traces (the trace IR)
--------------------------------

``record(executable=True)`` promotes the trace from a costing artifact to
an executable IR: every emitter call site passes a ``replay`` thunk with
signature ``replay(reads, writes) -> None`` that recomputes the kernel's
declared writes from its declared reads, and the trace captures each
read/write as a :class:`ViewSpec` -- ``(buffer token, element offset,
shape)`` into the owning allocation (the same byte-interval machinery the
dependency edges already use).  :class:`TraceProgram` then re-executes the
recorded stream against fresh buffers: read-only external inputs bind
directly to the live recorded arrays (zero copy), buffers that are read
before being written are re-seeded from a snapshot on every run, and all
intermediates are allocated once and reused across runs.
``TraceProgram.verify()`` asserts the replay is bit-identical to the eager
execution that was recorded.  Executable traces hold strong references to
every observed allocation (plain traces stay weak); the fusion pass in
:mod:`repro.core.fusion` consumes this IR.
"""

from __future__ import annotations

import weakref
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

import numpy as np

try:  # NumPy >= 2.0
    from numpy.lib.array_utils import byte_bounds as _byte_bounds
except ImportError:  # pragma: no cover - NumPy 1.x
    _byte_bounds = np.byte_bounds

from repro.gpu.kernel import (
    ELEMENT_BYTES,
    Kernel,
    base_conversion_kernel,
    elementwise_kernel,
    ntt_kernel,
)


def _stack_element_bytes(out: np.ndarray) -> int:
    """Bytes per logical residue of a stack write.

    Double-word stacks carry ``(rows, 2, N)`` hi/lo digit planes, so every
    residue moves two machine words (the 2x-bytes contract the trace cost
    model reconciles against).  Duplicated inline instead of importing
    :mod:`repro.core.modmath` (which imports this module).
    """
    if out.ndim == 3 and out.shape[-2] == 2 and out.dtype != np.object_:
        return 2 * ELEMENT_BYTES
    return ELEMENT_BYTES


@dataclass(frozen=True)
class ViewSpec:
    """One recorded array access: a contiguous view into an allocation.

    ``token`` names the owning allocation in the trace's buffer table,
    ``offset`` is the element offset of the view's first element within
    that allocation, and ``shape`` is the view's shape.  Together they let
    :class:`TraceProgram` rebuild the exact view against a *fresh* buffer
    (``fresh.reshape(-1)[offset:offset+size].reshape(shape)``), which
    works uniformly across the uint64, dword and object backends.
    """

    token: int
    offset: int
    shape: tuple[int, ...]

    @property
    def size(self) -> int:
        size = 1
        for dim in self.shape:
            size *= dim
        return size


@dataclass(frozen=True)
class TraceEvent:
    """One recorded kernel launch with its provenance.

    ``reads``/``writes`` are buffer tokens (indices into the trace's
    buffer table); ``deps`` are indices of earlier events that must
    complete before this kernel may execute (last-writer edges).

    On executable traces, ``read_views``/``write_views`` pin down the
    exact array slices the kernel touched and ``replay`` recomputes the
    writes from the reads (``replay(reads, writes)``); ``kind`` classifies
    the emitter (``elementwise``/``transform``/``baseconv``/``copy``), which
    is what the fusion pass keys legality on.
    """

    index: int
    kernel: Kernel
    scope: str
    reads: tuple[int, ...]
    writes: tuple[int, ...]
    deps: tuple[int, ...]
    kind: str = ""
    read_views: tuple[ViewSpec, ...] = ()
    write_views: tuple[ViewSpec, ...] = ()
    replay: Callable[[tuple, tuple], None] | None = None


@dataclass
class _BufferState:
    """Last-writer records of one live allocation (byte intervals).

    ``ref`` is a generation tag: a weak reference to the exact allocation
    this state was created for.  Python reuses addresses, so a dict keyed
    on ``id(array)`` alone can hand a *new* allocation the stale
    last-writer intervals of a freed one whose ``weakref.finalize``
    callback has not run yet (e.g. the old array was trapped in a
    garbage-collection cycle).  Comparing ``ref()`` against the live array
    detects the reuse and discards the stale state.
    """

    token: int
    base_lo: int
    ref: "weakref.ref | None" = None
    #: ``[lo, hi, event_index]`` write records, relative byte intervals.
    writes: list[list[int]] = field(default_factory=list)


class KernelTrace:
    """The kernel stream recorded from one or more data-plane executions.

    A trace is append-only; buffer identity and last-writer state live on
    the trace itself, so a single trace can accumulate several recorded
    regions (e.g. every operation routed through a
    :class:`repro.api.backend.TracingBackend`) with dependency edges intact
    across them.  Buffers are held through weak references only: when the
    data plane drops an array, its tracking state is discarded, so traced
    workloads do not accumulate dead intermediates.

    ``executable=True`` additionally captures, per event, the exact
    read/write views (:class:`ViewSpec`) and the call site's ``replay``
    thunk, and pins every observed allocation with a strong reference so
    :class:`TraceProgram` can rebuild and re-run the stream later.
    """

    def __init__(self, *, executable: bool = False) -> None:
        self.events: list[TraceEvent] = []
        self.executable = executable
        self._buffers: dict[int, _BufferState] = {}
        self._next_token: int = 0
        #: token -> owning allocation (strong refs, executable traces only).
        self._bases: dict[int, np.ndarray] = {}
        #: token -> snapshot taken at the token's first *read* access,
        #: before any recorded write (executable traces only).  Replay
        #: needs the value the region started from; the live array may be
        #: overwritten later inside the recorded region itself.
        self._seeds: dict[int, np.ndarray] = {}
        self._written_tokens: set[int] = set()
        #: ``(member event indices, fused replay)`` launch groups recorded
        #: at stage granularity (see :meth:`Dispatcher.fusion_group`): a
        #: run of per-stage launches that one fused mega-kernel replaces.
        self._fusion_groups: list[tuple[tuple[int, ...], Callable]] = []

    # -- recording (called through the Dispatcher) ---------------------------

    def _buffer(self, array: np.ndarray) -> tuple[_BufferState, tuple[int, int]]:
        """Resolve an array to its allocation state and relative byte range."""
        base = array
        while isinstance(getattr(base, "base", None), np.ndarray):
            base = base.base
        key = id(base)
        state = self._buffers.get(key)
        if state is not None and (state.ref is None or state.ref() is not base):
            # Generation mismatch: the allocation this state was created
            # for died and a new one reused its id before the finalize
            # callback ran.  Inheriting its last-writer intervals would
            # fabricate dependency edges, so start fresh.
            state = None
        if state is None:
            base_lo, _ = _byte_bounds(base)
            state = _BufferState(
                token=self._next_token, base_lo=base_lo, ref=weakref.ref(base)
            )
            self._next_token += 1
            self._buffers[key] = state
            # Drop the tracking state when the allocation dies, so a later
            # allocation reusing the id cannot inherit stale writers (and
            # the trace never pins data-plane memory).
            weakref.finalize(base, self._buffers.pop, key, None)
        if self.executable:
            self._bases.setdefault(state.token, base)
        lo, hi = _byte_bounds(np.asarray(array))
        return state, (lo - state.base_lo, hi - state.base_lo)

    def _view_spec(self, array: np.ndarray, state: _BufferState,
                   lo: int) -> ViewSpec:
        """Capture one access as a (token, element offset, shape) view."""
        arr = np.asarray(array)
        if not arr.flags.c_contiguous:
            raise ValueError(
                f"executable traces require contiguous kernel operands; got "
                f"shape {arr.shape} with strides {arr.strides}"
            )
        return ViewSpec(
            token=state.token, offset=lo // arr.itemsize, shape=arr.shape
        )

    @staticmethod
    def _overlapping_writers(state: _BufferState, lo: int, hi: int) -> Iterator[int]:
        for record in state.writes:
            if record[0] < hi and lo < record[1]:
                yield record[2]

    def add(
        self,
        kernel: Kernel,
        *,
        scope: str = "",
        reads: Sequence[np.ndarray] = (),
        writes: Sequence[np.ndarray] = (),
        device: int = 0,
        kind: str = "",
        replay: Callable[[tuple, tuple], None] | None = None,
    ) -> TraceEvent:
        """Append one kernel, deriving dependency edges from byte intervals.

        ``device`` stamps the kernel with the cluster device that launches
        it (0 in the single-GPU model); per-device drains in the serving
        plane record with the bucket's home device.  ``kind``/``replay``
        populate the executable IR (ignored on plain traces).
        """
        index = len(self.events)
        kernel.device = device
        deps: set[int] = set()
        read_tokens: dict[int, None] = {}
        read_views: list[ViewSpec] = []
        write_spans: list[tuple[_BufferState, int, int]] = []
        write_tokens: dict[int, None] = {}
        write_views: list[ViewSpec] = []
        executable = self.executable
        for array in reads:
            state, (lo, hi) = self._buffer(array)
            read_tokens.setdefault(state.token)
            deps.update(self._overlapping_writers(state, lo, hi))
            if executable:
                read_views.append(self._view_spec(array, state, lo))
                if (
                    state.token not in self._written_tokens
                    and state.token not in self._seeds
                ):
                    # First access is a read: snapshot the starting value
                    # now -- later events may overwrite it in place.
                    self._seeds[state.token] = self._bases[state.token].copy()
        for array in writes:
            state, (lo, hi) = self._buffer(array)
            write_tokens.setdefault(state.token)
            deps.update(self._overlapping_writers(state, lo, hi))
            write_spans.append((state, lo, hi))
            if executable:
                write_views.append(self._view_spec(array, state, lo))
                self._written_tokens.add(state.token)
        for state, lo, hi in write_spans:
            # The new record supersedes any it fully covers; partially
            # overlapped older records stay (conservative).
            state.writes = [
                r for r in state.writes if not (lo <= r[0] and r[1] <= hi)
            ]
            state.writes.append([lo, hi, index])
        deps.discard(index)
        event = TraceEvent(
            index=index,
            kernel=kernel,
            scope=scope,
            reads=tuple(read_tokens),
            writes=tuple(write_tokens),
            deps=tuple(sorted(deps)),
            kind=kind,
            read_views=tuple(read_views),
            write_views=tuple(write_views),
            replay=replay if executable else None,
        )
        self.events.append(event)
        return event

    def append(
        self,
        kernel: Kernel,
        *,
        scope: str = "",
        deps: Sequence[int] = (),
    ) -> TraceEvent:
        """Append one kernel with explicit dependency edges (no buffers).

        This is the rewriting entry point used by
        :class:`repro.cluster.sharding.ShardPlan`: a shard plan synthesises
        per-device kernel copies and transfer kernels from an existing
        trace, where dependencies are already known as event indices rather
        than live arrays.  ``deps`` must reference earlier events.
        """
        index = len(self.events)
        if any(d >= index or d < 0 for d in deps):
            raise ValueError(
                f"event {index} cannot depend on {tuple(deps)}; dependencies "
                f"must reference earlier events"
            )
        event = TraceEvent(
            index=index,
            kernel=kernel,
            scope=scope,
            reads=(),
            writes=(),
            deps=tuple(sorted(set(deps))),
        )
        self.events.append(event)
        return event

    def link(self, sources: Sequence[np.ndarray], destination: np.ndarray) -> None:
        """Propagate writer provenance through unrecorded data movement.

        Pure copies (``vstack``, fancy-indexed gathers, scatter assembly)
        are memory layout changes the kernel model folds into the
        neighbouring kernels; ``link`` keeps the dependency chain intact
        across them by making ``destination`` inherit the newest writer of
        ``sources``.
        """
        writers = []
        for source in sources:
            state, (lo, hi) = self._buffer(source)
            writers.extend(self._overlapping_writers(state, lo, hi))
        if not writers:
            return
        state, (lo, hi) = self._buffer(destination)
        state.writes = [r for r in state.writes if not (lo <= r[0] and r[1] <= hi)]
        state.writes.append([lo, hi, max(writers)])

    # -- views ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def kernels(self) -> list[Kernel]:
        """The recorded kernels in launch order."""
        return [event.kernel for event in self.events]

    def dependencies(self) -> list[tuple[int, ...]]:
        """Per-kernel dependency edges (indices of earlier kernels)."""
        return [event.deps for event in self.events]

    @property
    def kernel_count(self) -> int:
        """Total kernel launches recorded."""
        return int(round(sum(event.kernel.launches for event in self.events)))

    @property
    def bytes_moved(self) -> float:
        """Total bytes read plus written across the trace."""
        return sum(event.kernel.bytes_moved for event in self.events)

    @property
    def int_ops(self) -> float:
        """Total integer operations across the trace."""
        return sum(event.kernel.int_ops for event in self.events)

    def scopes(self) -> list[str]:
        """Distinct scope paths in first-appearance order."""
        seen: dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.scope, None)
        return list(seen)

    def events_in_scope(self, scope: str) -> list[TraceEvent]:
        """Events whose scope path is ``scope`` or nested below it."""
        prefix = scope + "/"
        return [
            e for e in self.events
            if e.scope == scope or e.scope.startswith(prefix)
        ]

    def leaf_segments(self) -> dict[str, list[TraceEvent]]:
        """Group events by the innermost scope component (hmult, modup, ...)."""
        segments: dict[str, list[TraceEvent]] = {}
        for event in self.events:
            leaf = event.scope.rsplit("/", 1)[-1] if event.scope else ""
            segments.setdefault(leaf, []).append(event)
        return segments

    def summary(self) -> dict:
        """Aggregate totals plus per-leaf-scope kernel counts."""
        return {
            "kernel_count": self.kernel_count,
            "bytes_moved": self.bytes_moved,
            "int_ops": self.int_ops,
            "scopes": {
                leaf: len(events)
                for leaf, events in self.leaf_segments().items()
            },
        }


class TraceProgram:
    """An executable-trace replayer: the recorded stream as a program.

    Built from an executable :class:`KernelTrace`, a program owns one
    buffer per recorded allocation and a flat list of ``(replay, reads,
    writes)`` steps whose views are reconstructed *once* against those
    buffers -- so :meth:`run` is a bare loop over thunks with zero
    per-step allocation, wrapper-object or bookkeeping cost.  Buffer
    policy:

    * allocations the trace only ever reads (input ciphertexts, key
      stacks, moduli/twiddle columns) bind directly to the live recorded
      arrays -- zero copy, zero seeding;
    * allocations read before their first write (in-place updates,
      consume-transforms) are re-seeded on every :meth:`run` from the
      snapshot the trace took at the token's first recorded read --
      later writes inside the recorded region cannot corrupt the seed;
    * everything else (intermediates, outputs) is allocated once and
      overwritten in place on every run.

    :meth:`verify` re-runs the program and asserts every byte interval the
    trace wrote is bit-identical to the live arrays the eager execution
    produced -- call it before the recorded arrays are mutated further.
    """

    def __init__(self, trace: KernelTrace) -> None:
        if not trace.executable:
            raise ValueError(
                "TraceProgram needs an executable trace; record with "
                "record(executable=True)"
            )
        missing = [
            e.kernel.name for e in trace.events if e.replay is None
        ]
        if missing:
            raise ValueError(
                f"trace contains {len(missing)} non-replayable events "
                f"(no replay thunk): {sorted(set(missing))}"
            )
        self.trace = trace
        # Classify tokens: written at all / read before their first write.
        written: set[int] = set()
        seeded: set[int] = set()
        for event in trace.events:
            for view in event.read_views:
                if view.token not in written:
                    seeded.add(view.token)
            for view in event.write_views:
                written.add(view.token)
        seeded &= written  # read-only tokens bind directly, no seed needed
        self._buffers: dict[int, np.ndarray] = {}
        self._seeds: dict[int, np.ndarray] = {}
        for token, base in trace._bases.items():
            if token in written:
                self._buffers[token] = np.empty_like(base)
                if token in seeded:
                    # The snapshot taken at the token's first read: the
                    # live array may have been overwritten since (even
                    # inside the recorded region itself).
                    self._seeds[token] = trace._seeds.get(token, base)
            else:
                self._buffers[token] = base
        # Pre-resolve every step's views against the program buffers.
        self._steps: list[tuple[Callable, tuple, tuple]] = [
            (
                event.replay,
                tuple(self.view(v) for v in event.read_views),
                tuple(self.view(v) for v in event.write_views),
            )
            for event in trace.events
        ]
        # Final-state intervals per written token (merged element ranges),
        # used by verify(); later writes supersede earlier overlapping
        # ones implicitly because both sides hold the *final* bytes.
        intervals: dict[int, list[list[int]]] = {}
        for event in trace.events:
            for view in event.write_views:
                spans = intervals.setdefault(view.token, [])
                lo, hi = view.offset, view.offset + view.size
                merged = [s for s in spans if not (lo <= s[0] and s[1] <= hi)]
                merged.append([lo, hi])
                intervals[view.token] = merged
        self._written_intervals = intervals

    def view(self, spec: ViewSpec) -> np.ndarray:
        """Rebuild one recorded view against this program's buffers."""
        flat = self._buffers[spec.token].reshape(-1)
        return flat[spec.offset : spec.offset + spec.size].reshape(spec.shape)

    @property
    def step_count(self) -> int:
        return len(self._steps)

    def run(self) -> None:
        """Re-execute the recorded stream against the program's buffers."""
        for token, seed in self._seeds.items():
            np.copyto(self._buffers[token], seed)
        with _DISPATCHER.suppressed():
            for replay, reads, writes in self._steps:
                replay(reads, writes)

    def output(self, array: np.ndarray) -> np.ndarray:
        """The program buffer holding the replayed value of ``array``.

        ``array`` must be an allocation (or view into one) the trace
        observed; the returned view covers the same element range in the
        program's buffer.
        """
        state, (lo, hi) = self.trace._buffer(array)
        if state.token not in self._buffers:
            raise KeyError("array was not observed by the recorded trace")
        spec = self.trace._view_spec(array, state, lo)
        return self.view(spec)

    def verify(self) -> None:
        """Run and assert bit-identity against the eager execution."""
        self.run()
        for token, spans in self._written_intervals.items():
            live = self.trace._bases[token].reshape(-1)
            replayed = self._buffers[token].reshape(-1)
            for lo, hi in spans:
                if not np.array_equal(replayed[lo:hi], live[lo:hi]):
                    raise AssertionError(
                        f"replay diverges from eager execution in buffer "
                        f"{token}, elements [{lo}, {hi})"
                    )


class _NullContext:
    """Shared reusable no-op context manager (the untraced hot path)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


def _replay_copy(reads: tuple, writes: tuple) -> None:
    """Default replay of a pure copy kernel (limb/stack duplication)."""
    out = writes[0]
    if len(reads) == 1:
        np.copyto(out, reads[0])
    else:
        np.concatenate(reads, axis=0, out=out)


class _ScopeGuard:
    """Pushes/pops one scope name on the dispatcher (tracing/profiling)."""

    __slots__ = ("_dispatcher", "_name")

    def __init__(self, dispatcher: "Dispatcher", name: str) -> None:
        self._dispatcher = dispatcher
        self._name = name

    def __enter__(self) -> None:
        self._dispatcher._scopes.append(self._name)
        profiler = self._dispatcher._profiler
        if profiler is not None:
            profiler.enter(self._name)

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._dispatcher._scopes.pop()
        profiler = self._dispatcher._profiler
        if profiler is not None:
            profiler.exit(self._name)
        return False


class _SuppressGuard:
    """Increments/decrements the suppression depth (tracing only)."""

    __slots__ = ("_dispatcher",)

    def __init__(self, dispatcher: "Dispatcher") -> None:
        self._dispatcher = dispatcher

    def __enter__(self) -> None:
        self._dispatcher._suppress += 1

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._dispatcher._suppress -= 1
        return False


class _DeviceGuard:
    """Sets/restores the active device tag (tracing only)."""

    __slots__ = ("_dispatcher", "_device", "_previous")

    def __init__(self, dispatcher: "Dispatcher", device: int) -> None:
        self._dispatcher = dispatcher
        self._device = device
        self._previous = 0

    def __enter__(self) -> None:
        self._previous = self._dispatcher._device
        self._dispatcher._device = self._device

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._dispatcher._device = self._previous
        return False


class Dispatcher:
    """Routes batched data-plane operations, optionally recording a trace.

    The data plane calls the typed emitters (:meth:`elementwise`,
    :meth:`transform`, :meth:`base_conversion`, :meth:`copy`) at every
    batched operation.  With no active trace they return immediately, and
    :meth:`scope`/:meth:`suppressed` hand out a shared no-op context, so
    the untraced hot path pays one attribute check per kernel and
    allocates nothing per operation.
    """

    def __init__(self) -> None:
        self._trace: KernelTrace | None = None
        self._scopes: list[str] = []
        self._suppress: int = 0
        self._device: int = 0
        self._stage_granular: bool = False
        #: Optional scope profiler (``enter(name)``/``exit(name)``) the
        #: observability plane installs via :meth:`profiling`; ``None``
        #: keeps :meth:`scope` on the shared null context.
        self._profiler = None

    # -- state ---------------------------------------------------------------

    @property
    def recording(self) -> bool:
        """True when a trace is active and emission is not suppressed.

        Call sites guard emitter calls on this so the untraced hot path
        skips even the argument packing (see the modmath stack kernels).
        """
        return self._trace is not None and self._suppress == 0

    @property
    def executable_recording(self) -> bool:
        """True when the active trace also captures the executable IR.

        Replay-thunk closures are only built when this is set, so plain
        (costing-only) recording stays as cheap as before.
        """
        trace = self._trace
        return trace is not None and self._suppress == 0 and trace.executable

    @property
    def stage_granular(self) -> bool:
        """True when recording at per-stage launch granularity.

        In this mode the transform engines emit one event per butterfly
        stage (the *unfused* GPU baseline: a global-memory round trip per
        stage) instead of one event per fused transform, and register the
        stage run as a fusion group so :func:`repro.core.fusion.fuse_trace`
        can merge it back into the fused mega-kernel.
        """
        return (
            self._trace is not None
            and self._suppress == 0
            and self._stage_granular
        )

    @contextmanager
    def record(
        self,
        trace: KernelTrace | None = None,
        *,
        executable: bool = False,
        stage_launches: bool = False,
    ) -> Iterator[KernelTrace]:
        """Record every dispatched kernel in the with-block into a trace.

        Nested ``record`` blocks are allowed; the innermost trace wins.
        Passing an existing trace appends to it (dependency state carries
        across recorded regions).  ``executable=True`` records the
        executable IR (view specs + replay thunks; see
        :class:`TraceProgram`).  ``stage_launches=True`` records transforms
        at per-stage launch granularity (see :attr:`stage_granular`).
        """
        previous = self._trace
        previous_stage = self._stage_granular
        active = trace if trace is not None else KernelTrace(executable=executable)
        self._trace = active
        self._stage_granular = stage_launches
        try:
            yield active
        finally:
            self._trace = previous
            self._stage_granular = previous_stage

    def scope(self, name: str):
        """Tag kernels emitted in the with-block with an operation scope.

        With no active trace (and no profiler) this is a zero-allocation
        no-op: scope names only matter to recorded kernels, so a recording
        started *inside* an already-open scope block does not see that
        outer name (recording regions wrap whole operations in practice --
        see :class:`repro.api.backend.TracingBackend`).
        """
        if self._trace is None and self._profiler is None:
            return _NULL_CONTEXT
        return _ScopeGuard(self, name)

    @contextmanager
    def profiling(self, profiler) -> Iterator[object]:
        """Route scope enter/exit through ``profiler`` in the with-block.

        ``profiler`` needs ``enter(name)`` / ``exit(name)`` methods (see
        :class:`repro.obs.rollup.WallClockProfiler`): every
        :meth:`scope` block then reports its eager wall-clock interval,
        with or without an active trace.  Nested blocks restore the
        previous profiler; execution is unchanged (profiling observes).
        """
        previous = self._profiler
        self._profiler = profiler
        try:
            yield profiler
        finally:
            self._profiler = previous

    def suppressed(self):
        """Silence emission inside a composite kernel's implementation.

        Zero-allocation no-op when no trace is active (suppression only
        gates emission, and emission is already off).
        """
        if self._trace is None:
            return _NULL_CONTEXT
        return _SuppressGuard(self)

    def on_device(self, device: int):
        """Tag kernels emitted in the with-block with a cluster device.

        The serving plane wraps each bucket drain in the bucket's home
        device, so a recorded multi-bucket trace carries real placement.
        Zero-allocation no-op when no trace is active (the device tag only
        matters to recorded kernels).  Blocks nest; the innermost wins.
        """
        if self._trace is None:
            return _NULL_CONTEXT
        if device < 0:
            raise ValueError(f"device index cannot be negative (got {device})")
        return _DeviceGuard(self, device)

    def _scope_path(self) -> str:
        return "/".join(self._scopes)

    # -- emitters ------------------------------------------------------------

    def emit(
        self,
        kernel: Kernel,
        *,
        reads: Sequence[np.ndarray] = (),
        writes: Sequence[np.ndarray] = (),
        kind: str = "",
        replay: Callable[[tuple, tuple], None] | None = None,
    ) -> None:
        """Record a pre-built kernel descriptor."""
        if self._trace is None or self._suppress:
            return
        self._trace.add(kernel, scope=self._scope_path(), reads=reads, writes=writes,
                        device=self._device, kind=kind, replay=replay)

    def elementwise(
        self,
        tag: str,
        *,
        reads: Sequence[np.ndarray],
        writes: Sequence[np.ndarray],
        ops_per_element: float,
        reuse: float = 1.0,
        replay: Callable[[tuple, tuple], None] | None = None,
    ) -> None:
        """Record one element-wise kernel; shapes come from the live arrays."""
        if self._trace is None or self._suppress:
            return
        out = np.asarray(writes[0])
        # Stacks are (rows, N) flat or (rows, 2, N) dword digit planes; a
        # 1-D write is a single row.  Elements count logical residues, so
        # the digit planes surface as doubled polys (2x bytes) below.
        rows = int(out.shape[0]) if out.ndim >= 2 else 1
        cols = int(out.shape[-1])
        elements = max(1, rows * cols)
        # Poly-equivalents come from the live array sizes, so broadcast
        # columns and row operands are charged their real (tiny) traffic.
        kernel = elementwise_kernel(
            tag,
            rows,
            cols,
            polys_read=sum(np.asarray(a).size for a in reads) / elements,
            polys_written=sum(np.asarray(a).size for a in writes) / elements,
            ops_per_element=ops_per_element,
            reuse=reuse,
        )
        self._trace.add(kernel, scope=self._scope_path(), reads=reads, writes=writes,
                        device=self._device, kind="elementwise", replay=replay)

    def transform(
        self,
        tag: str,
        rows: int,
        *,
        reads: Sequence[np.ndarray],
        writes: Sequence[np.ndarray],
        cols: int | None = None,
        fused_ops_per_element: float = 0.0,
        replay: Callable[[tuple, tuple], None] | None = None,
    ) -> None:
        """Record one (i)NTT kernel over ``rows`` limbs."""
        if self._trace is None or self._suppress:
            return
        out = np.asarray(writes[0])
        if cols is None:
            cols = int(out.shape[-1])
        kernel = ntt_kernel(
            tag, rows, cols,
            fused_ops_per_element=fused_ops_per_element,
            element_bytes=_stack_element_bytes(out),
        )
        self._trace.add(kernel, scope=self._scope_path(), reads=reads, writes=writes,
                        device=self._device, kind="transform", replay=replay)

    def base_conversion(
        self,
        tag: str,
        source_limbs: int,
        target_limbs: int,
        *,
        reads: Sequence[np.ndarray],
        writes: Sequence[np.ndarray],
        cols: int | None = None,
        replay: Callable[[tuple, tuple], None] | None = None,
    ) -> None:
        """Record one fast-base-conversion kernel (Equation 1)."""
        if self._trace is None or self._suppress:
            return
        out = np.asarray(writes[0])
        if cols is None:
            cols = int(out.shape[-1])
        kernel = base_conversion_kernel(
            tag, source_limbs, target_limbs, cols,
            element_bytes=_stack_element_bytes(out),
        )
        self._trace.add(kernel, scope=self._scope_path(), reads=reads, writes=writes,
                        device=self._device, kind="baseconv", replay=replay)

    def copy(
        self,
        *,
        reads: Sequence[np.ndarray],
        writes: Sequence[np.ndarray],
        tag: str = "limb-copy",
        replay: Callable[[tuple, tuple], None] | None = None,
    ) -> None:
        """Record a device-to-device copy (limb/stack duplication)."""
        if self._trace is None or self._suppress:
            return
        if replay is None and self.executable_recording:
            replay = _replay_copy
        self.elementwise(tag, reads=reads, writes=writes, ops_per_element=0.0,
                         replay=replay)

    def fusion_group(
        self, count: int, replay: Callable[[tuple, tuple], None],
    ) -> None:
        """Mark the last ``count`` recorded events as one fusable group.

        Emitters that decompose a fused launch into per-stage events
        (:attr:`stage_granular`) call this right after emitting the run;
        ``replay`` is the single mega-kernel thunk -- with the first
        member's reads and the last member's writes -- that computes the
        identical result.  The fusion pass substitutes it when a legal
        chain covers the whole group, so the fused program executes the
        stage-fused kernel instead of the per-stage launches.
        """
        if self._trace is None or self._suppress or not self._trace.executable:
            return
        events = self._trace.events
        if count < 2 or count > len(events):
            return
        indices = tuple(event.index for event in events[-count:])
        self._trace._fusion_groups.append((indices, replay))

    def link(self, sources: Sequence[np.ndarray], destination: np.ndarray) -> None:
        """Forward provenance across unrecorded data movement (see trace)."""
        if self._trace is None:
            return
        self._trace.link(sources, destination)


#: Process-wide dispatcher every data-plane call site routes through.
_DISPATCHER = Dispatcher()


def get_dispatcher() -> Dispatcher:
    """Return the process-wide execution-plane dispatcher."""
    return _DISPATCHER


__all__ = [
    "Dispatcher",
    "KernelTrace",
    "TraceEvent",
    "TraceProgram",
    "ViewSpec",
    "get_dispatcher",
]
