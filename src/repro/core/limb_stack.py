"""``LimbStack``: flat ``(num_limbs, N)`` residue storage for one polynomial.

This is the flattened allocation strategy of §III-D: instead of one device
buffer per limb (stack-of-arrays), all limbs of a polynomial live in a
single contiguous 2-D array backed by one pool-charged
:class:`~repro.core.limb.VectorGPU`.  Cross-limb operations then run as
single NumPy expressions that broadcast the ``(L, 1)`` moduli column over
the stack (:mod:`repro.core.modmath`'s ``stack_*`` kernels), which is the
Python analogue of the batched cross-limb kernels of §III-F -- no per-limb
Python loop remains on the hot path.

Per-limb access is preserved through zero-copy views:
:meth:`LimbStack.limb_view` hands out a :class:`~repro.core.limb.Limb`
whose ``data`` is a row view of the stack and whose buffer is an unmanaged
:class:`~repro.core.limb.VectorGPU` window over the flat allocation, so
the legacy ``poly.limbs[i]`` API keeps working without duplicating memory
or double-charging the pool.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core import modmath
from repro.core.automorphism import coeff_automorphism_map
from repro.core.dispatch import get_dispatcher
from repro.core.limb import Limb, LimbFormat, VectorGPU
from repro.core.memory import STRATEGY_FLATTENED, FusedFootprintError, MemoryPool
from repro.gpu.kernel import MODADD_OPS

_DISPATCH = get_dispatcher()


class LimbStack:
    """All limbs of one degree-``N`` polynomial in a flat ``(L, N)`` array.

    Parameters
    ----------
    moduli:
        One word-sized prime per row.
    data:
        Canonical ``(len(moduli), N)`` residue stack (or ``(len(moduli),
        2, N)`` hi/lo digit planes on the double-word backend).  Arrays in
        another backend's format are converted via
        :func:`repro.core.modmath.coerce_stack`; use :meth:`from_rows` to
        canonicalize arbitrary input.
    pool:
        Memory pool charged for the single flattened allocation.
    """

    __slots__ = ("moduli", "data", "ring_degree", "buffer", "_col")

    def __init__(
        self,
        moduli: Sequence[int],
        data: np.ndarray,
        *,
        pool: MemoryPool | None = None,
    ) -> None:
        self.moduli = tuple(int(q) for q in moduli)
        data = np.asarray(data)
        if data.ndim not in (2, 3) or data.shape[0] != len(self.moduli):
            raise ValueError(
                f"stack data must be ({len(self.moduli)}, N) or "
                f"({len(self.moduli)}, 2, N), got {data.shape}"
            )
        self._col = modmath.moduli_column(self.moduli)
        self.data = modmath.coerce_stack(data, self._col)
        self.ring_degree = int(self.data.shape[-1])
        # Double-word rows store two uint64 digit planes per residue, so
        # the pool is charged 16 bytes per element (2x bytes/limb).
        element_bytes = 16 if modmath.is_dword_stack(self.data) else 8
        self.buffer = VectorGPU(
            len(self.moduli) * self.ring_degree,
            element_bytes=element_bytes,
            pool=pool,
            tag=f"LimbStack[{len(self.moduli)}x{self.ring_degree}]",
            strategy=STRATEGY_FLATTENED,
        )

    # -- constructors --------------------------------------------------------

    @classmethod
    def zeros(
        cls,
        ring_degree: int,
        moduli: Sequence[int],
        *,
        pool: MemoryPool | None = None,
    ) -> "LimbStack":
        """Return an all-zero stack charged to ``pool``."""
        col = modmath.moduli_column(moduli)
        data = modmath.stack_zeros(len(col), ring_degree, col)
        return cls(moduli, data, pool=pool)

    @classmethod
    def from_rows(
        cls,
        moduli: Sequence[int],
        rows: Sequence[np.ndarray],
        *,
        pool: MemoryPool | None = None,
    ) -> "LimbStack":
        """Canonicalize per-limb residue rows into a fresh stack."""
        return cls(moduli, modmath.as_residue_stack(rows, moduli), pool=pool)

    @classmethod
    def fuse(
        cls,
        stacks: Sequence["LimbStack"],
        *,
        pool: MemoryPool | None = None,
    ) -> "LimbStack":
        """Concatenate several stacks row-wise into one fused allocation.

        The throughput plane's entry point: ``B`` same-shape stacks become a
        single contiguous ``(B*L, N)`` buffer charged to the pool **once**,
        so every cross-limb kernel downstream launches once for the whole
        batch.  Member rows are laid out member-major (all rows of stack 0,
        then stack 1, ...), the order :meth:`split` undoes.  The row copy is
        pure data movement; provenance is forwarded so dependency edges stay
        intact in a recorded trace.
        """
        stacks = list(stacks)
        if not stacks:
            raise ValueError("fuse needs at least one stack")
        n = stacks[0].ring_degree
        for stack in stacks[1:]:
            if stack.ring_degree != n:
                raise ValueError("fused stacks must share one ring degree")
        target_pool = pool if pool is not None else stacks[0].buffer.pool
        total_rows = sum(s.num_limbs for s in stacks)
        fused_moduli = [q for stack in stacks for q in stack.moduli]
        fused_col = modmath.moduli_column(fused_moduli)
        element_bytes = (
            16 if modmath.stack_backend(fused_col) == modmath.BACKEND_DWORD
            else stacks[0].buffer.element_bytes
        )
        nbytes = total_rows * n * element_bytes
        if not target_pool.fits(nbytes):
            rows_each = sorted({s.num_limbs for s in stacks})
            rows_text = (
                f"L={rows_each[0]}" if len(rows_each) == 1 else f"L∈{rows_each}"
            )
            raise FusedFootprintError(
                f"fusing B={len(stacks)} limb stacks ({rows_text} rows each, "
                f"N={n}) needs one {nbytes}-byte allocation, but the pool "
                f"budget is {target_pool.capacity_bytes} bytes with "
                f"{target_pool.free_bytes()} free; drain fewer members per "
                f"fused batch (e.g. serve's BatchingPolicy.memory_budget_bytes) "
                f"or raise the pool capacity"
            )
        data = np.concatenate(
            [modmath.coerce_stack(s.data, fused_col) for s in stacks], axis=0
        )
        fused = cls(fused_moduli, data, pool=target_pool)
        _DISPATCH.link(tuple(s.data for s in stacks), fused.data)
        return fused

    @classmethod
    def _view(cls, moduli: Sequence[int], data: np.ndarray, owner: VectorGPU) -> "LimbStack":
        """Zero-copy stack over already-canonical rows of a fused buffer.

        The buffer is an unmanaged window into ``owner``'s allocation, so
        the view charges nothing to the pool and :meth:`release` on it never
        touches accounting (mirrors :meth:`limb_view`).
        """
        stack = object.__new__(cls)
        stack.moduli = tuple(int(q) for q in moduli)
        stack._col = modmath.moduli_column(stack.moduli)
        stack.data = data
        stack.ring_degree = int(data.shape[-1])
        stack.buffer = VectorGPU(
            len(stack.moduli) * stack.ring_degree,
            element_bytes=owner.element_bytes,
            pool=owner.pool,
            managed=False,
            tag="stack-view",
        )
        return stack

    def split(self, parts: int) -> list["LimbStack"]:
        """Split a fused stack back into ``parts`` equal zero-copy members.

        The inverse of :meth:`fuse`: each returned stack is a row-range view
        of this stack's flat allocation (no copy, no pool charge).  Views
        dangle if the fused stack is released; copy them first to detach.
        """
        if parts <= 0:
            raise ValueError("parts must be positive")
        if self.num_limbs % parts:
            raise ValueError(
                f"cannot split {self.num_limbs} rows into {parts} equal members"
            )
        rows = self.num_limbs // parts
        return [
            LimbStack._view(
                self.moduli[i * rows : (i + 1) * rows],
                self.data[i * rows : (i + 1) * rows],
                self.buffer,
            )
            for i in range(parts)
        ]

    def copy(self) -> "LimbStack":
        """Deep copy, charged to the same pool as this stack's buffer."""
        data = self.data.copy()
        if _DISPATCH.recording:
            _DISPATCH.copy(reads=(self.data,), writes=(data,))
        return LimbStack(self.moduli, data, pool=self.buffer.pool)

    # -- accessors -----------------------------------------------------------

    @property
    def num_limbs(self) -> int:
        """Number of limb rows currently in the stack."""
        return len(self.moduli)

    @property
    def moduli_col(self) -> np.ndarray:
        """The broadcastable ``(L, 1)`` moduli column."""
        return self._col

    @property
    def is_fast(self) -> bool:
        """True when the stack runs on the fast uint64 backend."""
        return modmath.stack_is_fast(self._col)

    @property
    def backend(self) -> str:
        """Numeric backend of the stack (``uint64``/``dword``/``object``)."""
        return modmath.stack_backend(self._col)

    @property
    def is_dword(self) -> bool:
        """True when rows are stored as double-word hi/lo digit planes."""
        return modmath.stack_backend(self._col) == modmath.BACKEND_DWORD

    def footprint_bytes(self, element_bytes: int | None = None) -> int:
        """Device-memory footprint of the flat allocation.

        Defaults to the buffer's own element width (16 bytes/element on the
        double-word backend, 8 otherwise).
        """
        if element_bytes is None:
            element_bytes = self.buffer.element_bytes
        return self.num_limbs * self.ring_degree * element_bytes

    def limb_view(self, index: int, fmt: LimbFormat) -> Limb:
        """Return a :class:`Limb` over row ``index``.

        Zero-copy on the single-word backends: the limb's buffer is an
        unmanaged window into this stack's flat allocation, so releasing
        the view never touches pool accounting.  On the double-word backend
        the digit planes are merged into an exact object-array *copy* (the
        per-limb representation a >=2**31 modulus has always used) -- a
        compatibility path, not the hot path.
        """
        window = VectorGPU(
            self.ring_degree,
            element_bytes=self.buffer.element_bytes,
            pool=self.buffer.pool,
            managed=False,
            tag="limb-view",
        )
        row = self.data[index]
        if self.data.ndim == 3:
            row = modmath.object_row(modmath.dword_merge(row))
        return Limb.view_of(
            self.moduli[index], row, fmt, self.ring_degree, window
        )

    def rows(self) -> list[np.ndarray]:
        """Return per-limb residue rows.

        Zero-copy views on the single-word backends; merged uint64 copies
        (actual residue values, one lane each) on the double-word backend.
        """
        if self.data.ndim == 3:
            merged = modmath.dword_merge(self.data)
            return [merged[i] for i in range(self.num_limbs)]
        return [self.data[i] for i in range(self.num_limbs)]

    def release(self) -> None:
        """Free the flat buffer (views handed out become dangling)."""
        self.buffer.free()

    # -- elementwise arithmetic (batched across limbs) -----------------------

    def _check_compatible(self, other: "LimbStack") -> None:
        if self.moduli != other.moduli:
            raise ValueError("limb-stack moduli differ")
        if self.ring_degree != other.ring_degree:
            raise ValueError("limb-stack ring degrees differ")

    def _wrap(self, data: np.ndarray) -> "LimbStack":
        return LimbStack(self.moduli, data, pool=self.buffer.pool)

    def add(self, other: "LimbStack") -> "LimbStack":
        """Elementwise modular sum of two stacks (one broadcast expression)."""
        self._check_compatible(other)
        return self._wrap(modmath.stack_add_mod(self.data, other.data, self._col))

    def sub(self, other: "LimbStack") -> "LimbStack":
        """Elementwise modular difference."""
        self._check_compatible(other)
        return self._wrap(modmath.stack_sub_mod(self.data, other.data, self._col))

    def negate(self) -> "LimbStack":
        """Elementwise modular negation."""
        return self._wrap(modmath.stack_neg_mod(self.data, self._col))

    def multiply(self, other: "LimbStack") -> "LimbStack":
        """Elementwise modular product (caller enforces evaluation format)."""
        self._check_compatible(other)
        return self._wrap(modmath.stack_mul_mod(self.data, other.data, self._col))

    def multiply_scalars(self, scalars: Sequence[int]) -> "LimbStack":
        """Multiply each row by its own integer constant."""
        return self._wrap(modmath.stack_scalar_mod(self.data, scalars, self._col))

    def add_scalars_broadcast(self, scalars: Sequence[int]) -> "LimbStack":
        """Add one constant per row to every element (evaluation-format add)."""
        return self._wrap(modmath.stack_add_scalar_mod(self.data, scalars, self._col))

    def add_scalars_at(self, scalars: Sequence[int], index: int = 0) -> "LimbStack":
        """Add one constant per row to a single coefficient column.

        The coefficient-format scalar add: a constant polynomial only
        touches the degree-``index`` coefficient of every limb.
        """
        data = self.data.copy()
        col = modmath.scalar_column(scalars, self._col).ravel()
        qs = self._col.ravel()
        if data.ndim == 3:
            # Merge the touched coefficient column (one lane per limb),
            # add canonically, and split back into the digit planes.
            shift = np.uint64(32)
            merged = (data[:, 0, index] << shift) | data[:, 1, index]
            s = merged + col
            s = np.where(s >= qs, s - qs, s)
            data[:, 0, index] = s >> shift
            data[:, 1, index] = s & np.uint64(0xFFFFFFFF)
        elif self.is_fast:
            s = data[:, index] + col
            data[:, index] = np.where(s >= qs, s - qs, s)
        else:
            s = data[:, index] + col
            data[:, index] = s % qs
        if _DISPATCH.recording:
            replay = None
            if _DISPATCH.executable_recording:

                def replay(reads, writes, _idx=index, _qs=qs):
                    src, col_r, dst = reads[0], reads[1], writes[0]
                    if not np.shares_memory(src, dst):
                        np.copyto(dst, src)
                    if dst.ndim == 3:
                        shift = np.uint64(32)
                        merged = (dst[:, 0, _idx] << shift) | dst[:, 1, _idx]
                        s = merged + col_r
                        s = np.where(s >= _qs, s - _qs, s)
                        dst[:, 0, _idx] = s >> shift
                        dst[:, 1, _idx] = s & np.uint64(0xFFFFFFFF)
                    elif dst.dtype == object:
                        dst[:, _idx] = (dst[:, _idx] + col_r) % _qs
                    else:
                        s = dst[:, _idx] + col_r
                        dst[:, _idx] = np.where(s >= _qs, s - _qs, s)

            _DISPATCH.elementwise(
                "stack-scalar-add", reads=(self.data, col), writes=(data,),
                ops_per_element=MODADD_OPS, replay=replay,
            )
        return self._wrap(data)

    def automorphism_coeff(self, exponent: int) -> "LimbStack":
        """Apply ``X -> X^exponent`` to every row (coefficient representation).

        One gather plus one sign-fix expression for the whole stack -- the
        batched form of the GPU ``Automorph`` kernel.
        """
        source, sign = coeff_automorphism_map(self.ring_degree, exponent)
        with _DISPATCH.suppressed():
            gathered = self.data[..., source]
            negated = modmath.stack_neg_mod(gathered, self._col)
            # np.where picks the gather's (Fortran) iteration order; traces
            # need C-contiguous operands for byte-interval views.
            out = np.ascontiguousarray(np.where(sign == 1, gathered, negated))
        if _DISPATCH.recording:
            replay = None
            if _DISPATCH.executable_recording:

                def replay(reads, writes, _src=source, _sign=sign, _col=self._col):
                    gathered = reads[0][..., _src]
                    negated = modmath.stack_neg_mod(gathered, _col)
                    writes[0][...] = np.where(_sign == 1, gathered, negated)

            _DISPATCH.elementwise(
                "automorph", reads=(self.data,), writes=(out,),
                ops_per_element=2.0, replay=replay,
            )
        return self._wrap(out)

    # -- row management ------------------------------------------------------

    def take(self, indices: Sequence[int]) -> "LimbStack":
        """Return a new stack holding copies of the rows at ``indices``."""
        indices = list(indices)
        moduli = [self.moduli[i] for i in indices]
        # Fancy indexing already materializes a fresh array.
        data = self.data[indices]
        if _DISPATCH.recording:
            # The per-row read tuple is only packed when a trace is live.
            _DISPATCH.copy(
                reads=tuple(self.data[i : i + 1] for i in indices),
                writes=(data,),
            )
        return LimbStack(moduli, data, pool=self.buffer.pool)

    def head(self, count: int) -> "LimbStack":
        """Return a new stack with copies of the first ``count`` rows."""
        data = self.data[:count].copy()
        if _DISPATCH.recording:
            _DISPATCH.copy(reads=(self.data[:count],), writes=(data,))
        return LimbStack(self.moduli[:count], data, pool=self.buffer.pool)

    def __len__(self) -> int:
        return self.num_limbs


__all__ = ["LimbStack"]
