"""Core polynomial-ring arithmetic substrate (paper namespace ``FIDESlib``).

This subpackage provides everything needed to compute with degree-``N``
negacyclic polynomials under word-sized prime moduli:

* :mod:`repro.core.modmath` -- modular arithmetic, including the fast
  reduction techniques compared in Table III of the paper (Barrett,
  Montgomery and Shoup).
* :mod:`repro.core.primes` -- NTT-friendly prime generation and roots of
  unity.
* :mod:`repro.core.ntt` -- negacyclic NTT/iNTT including the
  hierarchical/2D formulation of Figure 3.
* :mod:`repro.core.rns` -- residue number system bases, CRT recombination
  and the fast base conversion of Equation 1.
* :mod:`repro.core.limb` / :mod:`repro.core.limb_stack` /
  :mod:`repro.core.rns_poly` -- the ``Limb`` / ``LimbStack`` /
  ``RNSPoly`` containers of Figure 2, with the flat ``(L, N)`` limb-stack
  storage of §III-D as the data plane.
* :mod:`repro.core.memory` -- the stream-ordered memory-pool analogue of
  the ``VectorGPU`` RAII wrapper.
"""

from repro.core.dispatch import Dispatcher, KernelTrace, get_dispatcher
from repro.core.modmath import (
    BarrettReducer,
    MontgomeryReducer,
    ShoupMultiplier,
    add_mod,
    sub_mod,
    mul_mod,
    pow_mod,
    inv_mod,
)
from repro.core.primes import generate_ntt_primes, find_primitive_root
from repro.core.ntt import NTTEngine, StackedNTTEngine
from repro.core.rns import RNSBasis, BaseConverter
from repro.core.rns_poly import RNSPoly
from repro.core.limb import Limb, VectorGPU
from repro.core.limb_stack import LimbStack

__all__ = [
    "Dispatcher",
    "KernelTrace",
    "get_dispatcher",
    "BarrettReducer",
    "MontgomeryReducer",
    "ShoupMultiplier",
    "add_mod",
    "sub_mod",
    "mul_mod",
    "pow_mod",
    "inv_mod",
    "generate_ntt_primes",
    "find_primitive_root",
    "NTTEngine",
    "StackedNTTEngine",
    "RNSBasis",
    "BaseConverter",
    "RNSPoly",
    "Limb",
    "VectorGPU",
    "LimbStack",
]
