"""Negacyclic Number Theoretic Transform (NTT) engines.

Polynomial multiplication in ``Z_q[X]/(X^N + 1)`` is carried out in the
evaluation domain: the forward NTT maps a coefficient vector to its
evaluations at the odd powers of a 2N-th root of unity ``ψ``, where
multiplication is element-wise.  FIDESlib implements:

* a radix-2 Cooley-Tukey forward transform (normal-order input,
  bit-reversed output) and a Gentleman-Sande inverse transform
  (bit-reversed input, normal-order output), avoiding explicit bit
  reversal exactly as described in §III-F.4 of the paper;
* Shoup-precomputed twiddle factors so every butterfly uses the cheap
  constant-operand multiplication of Table III;
* a hierarchical/2D ("four-step") formulation (Figure 3) that splits the
  length-N transform into √N-sized sub-transforms, which is what bounds
  global-memory traffic to four accesses per element on the GPU; and
* fusion hooks -- optional element-wise pre/post scaling folded into the
  transform, mirroring the Rescale/ModDown/HMult kernel fusions of
  §III-F.5.

The engines operate on NumPy arrays using the backend selected by
:func:`repro.core.modmath.dtype_for_modulus`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.core import modmath
from repro.core.dispatch import get_dispatcher
from repro.core.primes import find_root_of_unity
from repro.gpu.kernel import BUTTERFLY_OPS, SHOUP_MUL_OPS

_DISPATCH = get_dispatcher()


def bit_reverse_indices(n: int) -> np.ndarray:
    """Return the bit-reversal permutation of ``range(n)`` (n a power of two)."""
    bits = n.bit_length() - 1
    indices = np.arange(n, dtype=np.int64)
    result = np.zeros(n, dtype=np.int64)
    for b in range(bits):
        result |= ((indices >> b) & 1) << (bits - 1 - b)
    return result


def is_power_of_two(n: int) -> bool:
    """Return True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


@dataclass
class NTTEngine:
    """Radix-2 negacyclic NTT/iNTT for a single prime modulus.

    Parameters
    ----------
    ring_degree:
        Polynomial degree bound ``N`` (power of two).
    modulus:
        NTT-friendly prime with ``modulus ≡ 1 (mod 2N)``.
    psi:
        Optional 2N-th primitive root of unity; derived automatically when
        omitted.
    """

    ring_degree: int
    modulus: int
    psi: int | None = None
    _psi_bitrev: np.ndarray = field(init=False, repr=False)
    _psi_inv_bitrev: np.ndarray = field(init=False, repr=False)
    _psi_powers: np.ndarray = field(init=False, repr=False)
    _psi_inv_powers: np.ndarray = field(init=False, repr=False)
    _n_inv: int = field(init=False, repr=False)

    def __post_init__(self) -> None:
        n, q = self.ring_degree, self.modulus
        if not is_power_of_two(n):
            raise ValueError(f"ring degree must be a power of two, got {n}")
        if (q - 1) % (2 * n) != 0:
            raise ValueError(f"modulus {q} is not NTT-friendly for N={n}")
        if self.psi is None:
            self.psi = find_root_of_unity(2 * n, q)
        psi = self.psi
        if modmath.pow_mod(psi, 2 * n, q) != 1 or modmath.pow_mod(psi, n, q) == 1:
            raise ValueError("psi is not a primitive 2N-th root of unity")
        psi_inv = modmath.inv_mod(psi, q)
        powers = np.empty(n, dtype=object)
        inv_powers = np.empty(n, dtype=object)
        acc = 1
        acc_inv = 1
        for i in range(n):
            powers[i] = acc
            inv_powers[i] = acc_inv
            acc = (acc * psi) % q
            acc_inv = (acc_inv * psi_inv) % q
        rev = bit_reverse_indices(n)
        self._psi_powers = modmath.as_residue_array(powers, q)
        self._psi_inv_powers = modmath.as_residue_array(inv_powers, q)
        self._psi_bitrev = modmath.as_residue_array(powers[rev], q)
        self._psi_inv_bitrev = modmath.as_residue_array(inv_powers[rev], q)
        self._n_inv = modmath.inv_mod(n, q)

    # -- public API ---------------------------------------------------------

    @property
    def n_inverse(self) -> int:
        """Return ``N^-1 mod q`` applied by the inverse transform."""
        return self._n_inv

    def forward(
        self,
        coefficients: np.ndarray,
        *,
        premultiply: int | None = None,
        postmultiply: int | None = None,
    ) -> np.ndarray:
        """Forward negacyclic NTT (normal-order input, bit-reversed output).

        ``premultiply``/``postmultiply`` are optional scalar factors fused
        into the transform, mirroring the SwitchModulus/Rescale fusions the
        paper folds into its NTT kernels.
        """
        q = self.modulus
        a = modmath.as_residue_array(coefficients, q).copy()
        if premultiply is not None:
            a = modmath.vec_mul_scalar_mod(a, premultiply, q)
        n = self.ring_degree
        t = n
        m = 1
        while m < n:
            t //= 2
            view = a.reshape(m, 2 * t)
            twiddles = self._psi_bitrev[m : 2 * m]
            u = view[:, :t].copy()
            v = modmath.vec_mul_mod(view[:, t:], twiddles.reshape(m, 1), q)
            view[:, :t] = modmath.vec_add_mod(u, v, q)
            view[:, t:] = modmath.vec_sub_mod(u, v, q)
            a = view.reshape(n)
            m *= 2
        if postmultiply is not None:
            a = modmath.vec_mul_scalar_mod(a, postmultiply, q)
        return a

    def inverse(
        self,
        evaluations: np.ndarray,
        *,
        premultiply: int | None = None,
        postmultiply: int | None = None,
    ) -> np.ndarray:
        """Inverse negacyclic NTT (bit-reversed input, normal-order output).

        Implemented with Gentleman-Sande butterflies so no explicit
        bit-reversal pass is needed (paper §III-F.4).
        """
        q = self.modulus
        a = modmath.as_residue_array(evaluations, q).copy()
        if premultiply is not None:
            a = modmath.vec_mul_scalar_mod(a, premultiply, q)
        n = self.ring_degree
        t = 1
        m = n
        while m > 1:
            h = m // 2
            view = a.reshape(h, 2 * t)
            twiddles = self._psi_inv_bitrev[h : 2 * h]
            u = view[:, :t]
            v = view[:, t:]
            view_sum = modmath.vec_add_mod(u, v, q)
            view_diff = modmath.vec_mul_mod(
                modmath.vec_sub_mod(u, v, q), twiddles.reshape(h, 1), q
            )
            view[:, :t] = view_sum
            view[:, t:] = view_diff
            a = view.reshape(n)
            t *= 2
            m = h
        scale = self._n_inv
        if postmultiply is not None:
            scale = modmath.mul_mod(scale, postmultiply % q, q)
        return modmath.vec_mul_scalar_mod(a, scale, q)

    def negacyclic_multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Multiply two coefficient-domain polynomials modulo ``X^N + 1``."""
        fa = self.forward(a)
        fb = self.forward(b)
        return self.inverse(modmath.vec_mul_mod(fa, fb, self.modulus))

    def shoup_twiddles(self) -> np.ndarray:
        """Return Shoup precomputations for the bit-reversed twiddle table.

        These are the constants the GPU kernels use to replace the wide
        modular multiplications in the butterflies with Shoup
        multiplications (one wide + two low multiplies per Table III).
        """
        q = self.modulus
        return np.array(
            [(int(w) << modmath.WORD_BITS) // q for w in self._psi_bitrev],
            dtype=object,
        )


@dataclass
class HierarchicalNTT:
    """Four-step hierarchical/2D negacyclic NTT (Figure 3 of the paper).

    The length-N transform is decomposed into ``N1 x N2`` sub-transforms
    (``N1, N2 ≈ √N``):

    1. twist the input by ``ψ^j`` (turning the negacyclic transform into a
       cyclic one),
    2. column transforms of size ``N1``,
    3. multiplication by inter-block twiddle factors computed "on the fly"
       in the GPU implementation,
    4. row transforms of size ``N2`` followed by a transpose.

    On a GPU this bounds global-memory traffic to four accesses per
    element; here the same structure is reproduced and the per-pass memory
    traffic is accounted for so the performance model can consume it.
    Results are produced in natural order and agree with
    :class:`NTTEngine` up to the output permutation (verified by the test
    suite through round-trips and the convolution theorem).
    """

    ring_degree: int
    modulus: int
    psi: int | None = None

    def __post_init__(self) -> None:
        n, q = self.ring_degree, self.modulus
        if not is_power_of_two(n):
            raise ValueError(f"ring degree must be a power of two, got {n}")
        if self.psi is None:
            self.psi = find_root_of_unity(2 * n, q)
        psi = self.psi
        self._omega = modmath.mul_mod(psi, psi, q)  # primitive N-th root
        log_n = n.bit_length() - 1
        self._n1 = 1 << (log_n // 2)
        self._n2 = n // self._n1
        self._psi_powers = modmath.as_residue_array(
            np.array([modmath.pow_mod(psi, j, q) for j in range(n)], dtype=object), q
        )
        self._psi_inv_powers = modmath.as_residue_array(
            np.array(
                [modmath.pow_mod(modmath.inv_mod(psi, q), j, q) for j in range(n)],
                dtype=object,
            ),
            q,
        )
        self._col_engine = _CyclicNTT(self._n1, q, modmath.pow_mod(self._omega, self._n2, q))
        self._row_engine = _CyclicNTT(self._n2, q, modmath.pow_mod(self._omega, self._n1, q))
        self._inter_twiddles = self._build_inter_twiddles(inverse=False)
        self._inter_twiddles_inv = self._build_inter_twiddles(inverse=True)
        self._n_inv = modmath.inv_mod(n, q)
        self.memory_passes = 4  # element loads per transform, as in Figure 3

    def _build_inter_twiddles(self, *, inverse: bool) -> np.ndarray:
        q = self.modulus
        omega = self._omega if not inverse else modmath.inv_mod(self._omega, q)
        rows = np.empty((self._n1, self._n2), dtype=object)
        for i in range(self._n1):
            w = modmath.pow_mod(omega, i, q)
            acc = 1
            for j in range(self._n2):
                rows[i, j] = acc
                acc = (acc * w) % q
        return modmath.as_residue_array(rows, q)

    def forward(self, coefficients: np.ndarray) -> np.ndarray:
        """Forward negacyclic NTT in natural order via the four-step method."""
        q = self.modulus
        a = modmath.as_residue_array(coefficients, q)
        a = modmath.vec_mul_mod(a, self._psi_powers, q)  # negacyclic twist
        # Pass 1: load coefficients as an (n1, n2) grid, M[j1][j2] = a[j1*n2+j2].
        grid = a.reshape(self._n1, self._n2)
        # Pass 2: size-n1 column transforms (the sqrt(N)-sized sub-FFTs of Fig. 3).
        grid = self._col_engine.forward_batch(grid.T).T
        # Pass 3: inter-block twiddles (computed "on the fly" by the GPU kernel).
        grid = modmath.vec_mul_mod(grid, self._inter_twiddles, q)
        # Pass 4: size-n2 row transforms followed by the output transpose.
        grid = self._row_engine.forward_batch(grid)
        return grid.T.reshape(self.ring_degree)

    def inverse(self, evaluations: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`forward` (natural-order input and output)."""
        q = self.modulus
        grid = modmath.as_residue_array(evaluations, q).reshape(self._n2, self._n1).T
        grid = self._row_engine.inverse_batch(grid)
        grid = modmath.vec_mul_mod(grid, self._inter_twiddles_inv, q)
        grid = self._col_engine.inverse_batch(grid.T).T
        a = grid.reshape(self.ring_degree)
        a = modmath.vec_mul_mod(a, self._psi_inv_powers, q)
        return a

    def negacyclic_multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Multiply two coefficient-domain polynomials modulo ``X^N + 1``."""
        fa = self.forward(a)
        fb = self.forward(b)
        return self.inverse(modmath.vec_mul_mod(fa, fb, self.modulus))


class _CyclicNTT:
    """Cyclic (DFT-style) NTT of a power-of-two size used by the 2D scheme."""

    def __init__(self, size: int, modulus: int, omega: int) -> None:
        if not is_power_of_two(size):
            raise ValueError("cyclic NTT size must be a power of two")
        if modmath.pow_mod(omega, size, modulus) != 1:
            raise ValueError("omega is not a size-th root of unity")
        self.size = size
        self.modulus = modulus
        self.omega = omega
        self._matrix = self._build_matrix(omega)
        self._matrix_inv = self._build_matrix(modmath.inv_mod(omega, modulus))
        self._size_inv = modmath.inv_mod(size, modulus)

    def _build_matrix(self, omega: int) -> np.ndarray:
        q = self.modulus
        rows = np.empty((self.size, self.size), dtype=object)
        for i in range(self.size):
            w = modmath.pow_mod(omega, i, q)
            acc = 1
            for j in range(self.size):
                rows[i, j] = acc
                acc = (acc * w) % q
        return rows

    def _apply(self, matrix: np.ndarray, batch: np.ndarray) -> np.ndarray:
        q = self.modulus
        data = np.array([[int(x) for x in row] for row in np.atleast_2d(batch)], dtype=object)
        out = data.dot(matrix.T) % q
        return modmath.as_residue_array(out, q)

    def forward_batch(self, batch: np.ndarray) -> np.ndarray:
        """Transform each row of ``batch`` (shape ``(rows, size)``)."""
        return self._apply(self._matrix, batch)

    def inverse_batch(self, batch: np.ndarray) -> np.ndarray:
        """Inverse-transform each row of ``batch``."""
        out = self._apply(self._matrix_inv, batch)
        return modmath.vec_mul_scalar_mod(out, self._size_inv, self.modulus)


@lru_cache(maxsize=None)
def get_engine(ring_degree: int, modulus: int, psi: int | None = None) -> NTTEngine:
    """Return a cached :class:`NTTEngine` for ``(ring_degree, modulus)``.

    Mirrors FIDESlib's singleton precomputation: twiddle tables are built
    once per context and shared by every kernel launch.
    """
    return NTTEngine(ring_degree=ring_degree, modulus=modulus, psi=psi)


#: Contiguous block size (elements) below which radix-2 stages run in a
#: transposed layout.  Stages with butterfly half-width ``t < BLOCK/2``
#: touch tiny strided slices that defeat vectorization; transposing the
#: ``(blocks, BLOCK)`` grid once turns their inner axis into long
#: contiguous runs -- the same locality argument as the paper's four-step
#: NTT (§III-F.4, Figure 3), applied to the CPU cache hierarchy.
_TRANSPOSED_BLOCK = 16

#: Rows processed together by one pass of the stacked stage pipeline --
#: the CPU analogue of the paper's ``limb_batch`` parameter (§III-F.1,
#: Figure 7): batches must be wide enough to amortize kernel overhead but
#: small enough that the working set (data plus scratch) stays resident in
#: the private cache, or throughput degrades exactly as Figure 7 shows for
#: small-L2 GPUs.
_NTT_LIMB_BATCH = 3

#: Byte budget of the NTT scratch-buffer cache.  Batched (B·L, N) transforms
#: grow the per-key buffers to the largest shape seen; without a bound a
#: one-off wide batch would pin its high-water scratch forever.  Least
#: recently used buffers are evicted once the total exceeds the budget (the
#: buffer serving the current call is never evicted, even if it alone
#: exceeds the budget -- the transform cannot run without it).
_SCRATCH_BUDGET_BYTES = 64 << 20

_scratch_cache: "OrderedDict[str, np.ndarray]" = OrderedDict()


def set_scratch_budget(nbytes: int) -> int:
    """Set the scratch-cache byte budget, returning the previous value.

    Passing a smaller budget evicts immediately.  Mainly for tests and
    memory-constrained deployments.
    """
    global _SCRATCH_BUDGET_BYTES
    previous = _SCRATCH_BUDGET_BYTES
    _SCRATCH_BUDGET_BYTES = int(nbytes)
    _evict_scratch(keep=None)
    return previous


def scratch_cache_bytes() -> int:
    """Total bytes currently held by the NTT scratch cache."""
    return sum(buf.nbytes for buf in _scratch_cache.values())


def _evict_scratch(keep: str | None) -> None:
    """Evict least-recently-used scratch buffers beyond the byte budget."""
    total = scratch_cache_bytes()
    while total > _SCRATCH_BUDGET_BYTES and _scratch_cache:
        key = next(iter(_scratch_cache))
        if key == keep:
            if len(_scratch_cache) == 1:
                break
            _scratch_cache.move_to_end(key)
            key = next(iter(_scratch_cache))
        total -= _scratch_cache.pop(key).nbytes


def _scratch(key: str, shape: tuple[int, ...]) -> np.ndarray:
    """Return a cached uint64 scratch buffer (single-threaded reuse, LRU)."""
    size = 1
    for dim in shape:
        size *= dim
    buf = _scratch_cache.get(key)
    if buf is None or buf.size < size:
        _scratch_cache.pop(key, None)
        buf = np.empty(size, dtype=np.uint64)
        _scratch_cache[key] = buf
        _evict_scratch(keep=key)
    else:
        _scratch_cache.move_to_end(key)
    return buf[:size].reshape(shape)


class StackedNTTEngine:
    """Batched negacyclic NTT/iNTT over a flat ``(num_limbs, N)`` limb stack.

    The per-limb radix-2 transforms of :class:`NTTEngine` share their
    butterfly schedule across limbs -- only the twiddle values differ.
    Stacking the per-modulus twiddle tables into ``(L, N)`` matrices
    therefore lets one pass of ``log2 N`` broadcast expressions transform
    every limb of a polynomial at once, which is the limb-batched NTT of
    §III-F: the Python-loop-per-limb overhead disappears and each stage is
    a single vectorized butterfly over the whole stack.

    The last ``log2(BLOCK)`` stages only move data within contiguous
    ``BLOCK``-sized runs, so they execute on a transposed ``(L, BLOCK,
    N/BLOCK)`` grid where the vectorized inner axis stays long (the
    four-step locality idea of §III-F.4).

    Results are bit-identical to running :class:`NTTEngine` limb by limb:
    the same butterflies execute in the same order on the same residues,
    merely staged through a different memory layout.

    Fused cross-ciphertext calls (the throughput plane) transform stacks
    whose moduli tuple is a *tiling* of a shorter base -- ``B`` members at
    the same level repeat the same ``L`` primes.  The engine detects the
    repeat period and materializes its twiddle/Shoup tables only for the
    base period: a GPU keeps one twiddle table in constant memory no
    matter how many ciphertexts a kernel covers, and duplicating the
    tables ``B×`` on the CPU would just evict them from cache.  Tiled
    stacks are processed per period (single-modulus tilings broadcast one
    table row over the whole stack), which changes neither the butterfly
    order nor any residue.
    """

    def __init__(self, ring_degree: int, moduli: Sequence[int]) -> None:
        self.ring_degree = ring_degree
        self.moduli = tuple(int(q) for q in moduli)
        col = modmath.moduli_column(self.moduli)
        self.backend = modmath.stack_backend(col)
        self.fast = self.backend == modmath.BACKEND_UINT64
        self.dword = self.backend == modmath.BACKEND_DWORD
        self._col = col
        # Twiddle tables cover one table row per *distinct* chunk modulus:
        # fused cross-ciphertext stacks repeat a short base either
        # member-major (the tuple tiles with some period) or limb-major
        # (runs of one modulus), and materializing the repeats would only
        # evict the tables from cache.  The exact object path keeps
        # full-length tables: it indexes them per stack row.
        length = len(self.moduli)
        base = self.moduli
        self._chunks: list[tuple[int, int, int, int]] = []
        if self.backend != modmath.BACKEND_OBJECT:
            period = self._repeat_period(self.moduli)
            runs = self._runs(self.moduli)
            if period < length:
                base = self.moduli[:period]
                if period == 1:
                    self._chunks = [(0, length, 0, 1)]
                else:
                    self._chunks = [
                        (r0, r0 + period, 0, period)
                        for r0 in range(0, length, period)
                    ]
            elif len(runs) < length:
                base = tuple(q for q, _ in runs)
                row = 0
                for index, (_, count) in enumerate(runs):
                    self._chunks.append((row, row + count, index, index + 1))
                    row += count
        if not self._chunks:
            base = self.moduli
            self._chunks = [
                (r0, min(r0 + _NTT_LIMB_BATCH, length), r0,
                 min(r0 + _NTT_LIMB_BATCH, length))
                for r0 in range(0, length, _NTT_LIMB_BATCH)
            ]
        self._period = len(base)
        engines = [get_engine(ring_degree, q) for q in base]
        base_col = modmath.moduli_column(base)
        self._col3 = base_col.reshape(-1, 1, 1)
        self._col4 = base_col.reshape(-1, 1, 1, 1)
        self._base_col = base_col
        self._psi_bitrev = self._stack_tables([e._psi_bitrev for e in engines])
        self._psi_inv_bitrev = self._stack_tables([e._psi_inv_bitrev for e in engines])
        self._n_inv = [get_engine(ring_degree, q).n_inverse for q in self.moduli]
        if self.fast:
            # Shoup companions of both twiddle tables (Table III): the
            # butterflies then run with two multiplies and a shift instead
            # of a hardware division per element.
            self._psi_shoup = modmath.shoup_column(self._psi_bitrev, base_col)
            self._psi_inv_shoup = modmath.shoup_column(self._psi_inv_bitrev, base_col)
            # 2q columns for the lazy [0, 2q) butterfly representatives.
            self._two3 = self._col3 * np.uint64(2)
            self._two4 = self._col4 * np.uint64(2)
        elif self.dword:
            # 64-bit Shoup companions (floor(w * 2**64 / q)), stored as
            # 32-bit digit halves so each butterfly's mulhi64 reads
            # precomputed operands instead of re-splitting per stage.
            shift = np.uint64(32)
            mask = np.uint64(0xFFFFFFFF)
            fw = modmath.dword_shoup_column(self._psi_bitrev, base_col)
            inv = modmath.dword_shoup_column(self._psi_inv_bitrev, base_col)
            self._psi_shoup_hi = fw >> shift
            self._psi_shoup_lo = fw & mask
            self._psi_inv_shoup_hi = inv >> shift
            self._psi_inv_shoup_lo = inv & mask
            # 2q < 2**63 for every dword modulus, so the lazy bound still
            # fits a lane (sums stay below 4q < 2**64).
            self._two3 = self._col3 * np.uint64(2)
        # Precompute the per-stage transposed twiddle grids (fast path only;
        # the exact object path keeps the simple standard-layout stages).
        self._block = _TRANSPOSED_BLOCK
        self._grid = self.ring_degree // self._block if self.ring_degree > self._block else 0
        if self.fast and self._grid >= 2:
            self._fw_trans = self._transposed_tables(self._psi_bitrev, self._psi_shoup)
            self._inv_trans = self._transposed_tables(
                self._psi_inv_bitrev, self._psi_inv_shoup
            )
        else:
            self._grid = 0

    @staticmethod
    def _repeat_period(moduli: tuple[int, ...]) -> int:
        """Smallest ``p`` with ``moduli == moduli[:p] * (len(moduli) // p)``."""
        length = len(moduli)
        for p in range(1, length):
            if length % p == 0 and moduli == moduli[:p] * (length // p):
                return p
        return length

    @staticmethod
    def _runs(moduli: tuple[int, ...]) -> list[tuple[int, int]]:
        """Collapse consecutive equal moduli into ``(modulus, count)`` runs."""
        runs: list[tuple[int, int]] = []
        for q in moduli:
            if runs and runs[-1][0] == q:
                runs[-1] = (q, runs[-1][1] + 1)
            else:
                runs.append((q, 1))
        return runs

    def _row_chunks(self, num_rows: int):
        """``(row_lo, row_hi, table_lo, table_hi)`` processing chunks.

        Non-repeating stacks walk :data:`_NTT_LIMB_BATCH`-row chunks with
        matching table rows.  Member-major tilings walk one repeat period
        per chunk; limb-major runs walk one run per chunk with its single
        table row broadcast over the run's data rows.
        """
        if num_rows != len(self.moduli):  # pragma: no cover - defensive
            raise ValueError(
                f"stack has {num_rows} rows but the engine covers "
                f"{len(self.moduli)} moduli"
            )
        return self._chunks

    def _stack_tables(self, rows: list[np.ndarray]) -> np.ndarray:
        if self.fast:
            return np.stack(rows)
        if self.dword:
            # Per-limb tables of >=2**31 moduli are exact object rows;
            # every canonical twiddle fits a merged uint64 lane.
            return np.stack([
                r.astype(np.uint64) if r.dtype == np.object_ else r
                for r in rows
            ])
        return np.stack([modmath.object_row(r) for r in rows])

    def _transposed_tables(self, table: np.ndarray, shoup: np.ndarray | None):
        """Twiddles of the block-local stages, reshaped for the transposed grid.

        For a stage with ``m`` groups (``m >= grid``), group ``g`` splits
        into block ``b = g // (m/grid)`` and in-block subgroup
        ``s = g % (m/grid)``; on the transposed ``(L, BLOCK, grid)`` layout
        the stage's twiddles become an ``(L, m/grid, 1, grid)`` grid.
        """
        num_limbs = self._period
        grid = self._grid
        tables = []
        m = grid
        while m < self.ring_degree:
            sub = m // grid
            tw = (
                table[:, m : 2 * m]
                .reshape(num_limbs, grid, sub)
                .transpose(0, 2, 1)[:, :, None, :]
                .copy()
            )
            sh = (
                shoup[:, m : 2 * m]
                .reshape(num_limbs, grid, sub)
                .transpose(0, 2, 1)[:, :, None, :]
                .copy()
                if shoup is not None
                else None
            )
            tables.append((tw, sh))
            m *= 2
        return tables

    def _working_copy(self, stack: np.ndarray, consume: bool) -> np.ndarray:
        a = modmath.coerce_stack(np.asarray(stack), self._col)
        if consume and a.flags.c_contiguous and a.flags.writeable:
            # The caller relinquished ownership (and any dtype coercion
            # already produced a fresh array), so transform in place.
            return a
        return a.copy()

    def forward(
        self,
        stack: np.ndarray,
        *,
        consume: bool = False,
        segments: Sequence[int] | None = None,
    ) -> np.ndarray:
        """Forward NTT of every row (normal-order input, bit-reversed output).

        ``consume=True`` lets the engine transform a caller-owned temporary
        in place instead of taking a defensive copy.  ``segments``
        describes how a fused call decomposes into logical GPU launches
        (one row count per launch, e.g. one per key-switching digit); it
        only affects trace recording, never the computation.
        """
        source = np.asarray(stack)
        with _DISPATCH.suppressed():
            a = self._working_copy(stack, consume)
            if self.fast:
                for r0, r1, t0, t1 in self._row_chunks(len(self.moduli)):
                    self._forward_rows_fast(a[r0:r1], t0, t1)
            elif self.dword:
                for r0, r1, t0, t1 in self._row_chunks(len(self.moduli)):
                    self._forward_rows_dword(a[r0:r1], t0, t1)
            else:
                a = self._forward_object(a)
        self._record_transform("ntt", source, a, segments)
        return a

    def inverse(
        self,
        stack: np.ndarray,
        *,
        consume: bool = False,
        segments: Sequence[int] | None = None,
    ) -> np.ndarray:
        """Inverse NTT of every row (bit-reversed input, normal-order output)."""
        source = np.asarray(stack)
        with _DISPATCH.suppressed():
            a = self._working_copy(stack, consume)
            if self.backend == modmath.BACKEND_OBJECT:
                a = self._inverse_object(a)
            else:
                rows_fn = (
                    self._inverse_rows_fast if self.fast
                    else self._inverse_rows_dword
                )
                for r0, r1, t0, t1 in self._row_chunks(len(self.moduli)):
                    rows_fn(a[r0:r1], t0, t1)
                # The rows carry lazy [0, 2q) representatives here; the
                # fused N^-1 scaling (Shoup) canonicalizes them.
                a = modmath.stack_scalar_mod(a, self._n_inv, self._col, out=a)
        # The fused N^-1 scaling is one Shoup multiply per element.
        self._record_transform(
            "intt", source, a, segments, fused_ops_per_element=SHOUP_MUL_OPS
        )
        return a

    def _record_transform(
        self,
        tag: str,
        source: np.ndarray,
        out: np.ndarray,
        segments: Sequence[int] | None,
        *,
        fused_ops_per_element: float = 0.0,
    ) -> None:
        """Report the transform to the execution plane (GPU launch granularity)."""
        if not _DISPATCH.recording:
            return
        rows = int(out.shape[0])
        parts = [rows] if segments is None else [int(s) for s in segments]
        if sum(parts) != rows:
            raise ValueError(f"segments {parts} do not cover {rows} rows")
        executable = _DISPATCH.executable_recording
        row = 0
        for part in parts:
            if self.fast and _DISPATCH.stage_granular:
                self._record_stage_launches(
                    tag, source, out, row, part, executable,
                )
                row += part
                continue
            replay = None
            if executable:
                # Each segment replays through its own cached sub-engine
                # (chunking/tiling is bit-identical, see the class docstring),
                # transforming the program's write view in place.
                seg_moduli = self.moduli[row : row + part]

                def replay(
                    reads,
                    writes,
                    _n=self.ring_degree,
                    _moduli=seg_moduli,
                    _forward=(tag == "ntt"),
                ):
                    engine = get_stacked_engine(_n, _moduli)
                    src, dst = reads[0], writes[0]
                    if not np.shares_memory(src, dst):
                        np.copyto(dst, src)
                    fn = engine.forward if _forward else engine.inverse
                    res = fn(dst, consume=True)
                    if res is not dst:
                        np.copyto(dst, res)

            # Per-segment row slices keep fused launches independent in the
            # dependency DAG (each digit/component touches its own rows).
            _DISPATCH.transform(
                tag,
                part,
                reads=(source[row : row + part],),
                writes=(out[row : row + part],),
                cols=self.ring_degree,
                fused_ops_per_element=fused_ops_per_element,
                replay=replay,
            )
            row += part

    def _record_stage_launches(
        self,
        tag: str,
        source: np.ndarray,
        out: np.ndarray,
        row: int,
        part: int,
        executable: bool,
    ) -> None:
        """Record one segment as per-stage launches (the unfused baseline).

        Emits ``log2 N`` butterfly-stage events (plus the iNTT's ``N^-1``
        scaling launch), each replaying one canonical stage via
        :meth:`reference_stage` -- a full global-memory round trip per
        stage, which is exactly how an unfused GPU NTT executes.  The run
        is then registered as a fusion group whose mega-kernel replay is
        the stage-fused engine call, so ``fuse_trace`` can collapse the
        chain back into the fused transform (§III-F.4/F.5).
        """
        n = self.ring_degree
        stages = n.bit_length() - 1
        seg_moduli = self.moduli[row : row + part]
        forward = tag == "ntt"
        src = source[row : row + part]
        dst = out[row : row + part]
        for s in range(stages):
            replay = None
            if executable:

                def replay(
                    reads, writes,
                    _n=n, _moduli=seg_moduli, _s=s, _fwd=forward,
                ):
                    engine = get_stacked_engine(_n, _moduli)
                    sarr, darr = reads[0], writes[0]
                    if not np.shares_memory(sarr, darr):
                        np.copyto(darr, sarr)
                    engine.reference_stage(darr, _s, forward=_fwd)

            _DISPATCH.elementwise(
                f"{tag}-stage{s}",
                reads=(src if s == 0 else dst,),
                writes=(dst,),
                # One radix-2 butterfly covers two elements.
                ops_per_element=BUTTERFLY_OPS / 2.0,
                replay=replay,
            )
        count = stages
        if not forward:
            scale_replay = None
            if executable:

                def scale_replay(reads, writes, _n=n, _moduli=seg_moduli):
                    engine = get_stacked_engine(_n, _moduli)
                    sarr, darr = reads[0], writes[0]
                    if not np.shares_memory(sarr, darr):
                        np.copyto(darr, sarr)
                    engine.reference_scale(darr)

            _DISPATCH.elementwise(
                f"{tag}-scale",
                reads=(dst,),
                writes=(dst,),
                ops_per_element=SHOUP_MUL_OPS,
                replay=scale_replay,
            )
            count += 1
        if executable:

            def fused_replay(
                reads, writes, _n=n, _moduli=seg_moduli, _fwd=forward,
            ):
                engine = get_stacked_engine(_n, _moduli)
                sarr, darr = reads[0], writes[0]
                if not np.shares_memory(sarr, darr):
                    np.copyto(darr, sarr)
                fn = engine.forward if _fwd else engine.inverse
                res = fn(darr, consume=True)
                if res is not darr:
                    np.copyto(darr, res)

            _DISPATCH.fusion_group(count, fused_replay)

    def reference_stage(
        self, a: np.ndarray, stage: int, *, forward: bool = True,
    ) -> None:
        """One canonical radix-2 butterfly stage, in place (fast path).

        The per-launch granularity of an *unfused* GPU NTT: each stage
        streams the whole stack through memory and hands canonical
        ``[0, q)`` residues to the next launch, with fresh temporaries per
        launch (cross-stage lazy representatives and scratch pipelining
        are exactly the privileges stage fusion buys).  Running all
        ``log2 N`` stages is bit-identical to :meth:`forward` /
        :meth:`inverse` at the transform boundary -- the fused lazy
        pipeline canonicalizes to the same residues.
        """
        if not self.fast:
            raise NotImplementedError(
                "per-stage reference execution covers the uint64 fast path"
            )
        n = self.ring_degree
        rows = int(a.shape[0])
        if forward:
            m = 1 << stage
            t = n >> (stage + 1)
        else:
            t = 1 << stage
            m = n >> (stage + 1)
        for r0, r1, t0, t1 in self._row_chunks(rows):
            seg = a[r0:r1]
            srows = r1 - r0
            q3 = self._col3[t0:t1]
            if forward:
                view = seg.reshape(srows, m, 2 * t)
                u = view[:, :, :t]
                x = view[:, :, t:]
                tw = self._psi_bitrev[t0:t1, m : 2 * m].reshape(t1 - t0, m, 1)
                sh = self._psi_shoup[t0:t1, m : 2 * m].reshape(t1 - t0, m, 1)
                v = modmath.stack_shoup_mul(x, tw, sh, q3)
                lo = u + v
                np.minimum(lo, lo - q3, out=lo)
                hi = u - v
                np.minimum(hi, hi + q3, out=hi)
                u[...] = lo
                x[...] = hi
            else:
                view = seg.reshape(srows, m, 2 * t)
                u = view[:, :, :t]
                v = view[:, :, t:]
                tw = self._psi_inv_bitrev[t0:t1, m : 2 * m].reshape(t1 - t0, m, 1)
                sh = self._psi_inv_shoup[t0:t1, m : 2 * m].reshape(t1 - t0, m, 1)
                total = u + v
                np.minimum(total, total - q3, out=total)
                diff = u - v
                np.minimum(diff, diff + q3, out=diff)
                diff = modmath.stack_shoup_mul(diff, tw, sh, q3)
                u[...] = total
                v[...] = diff

    def reference_scale(self, a: np.ndarray) -> None:
        """The iNTT's trailing ``N^-1`` scaling as its own launch, in place."""
        modmath.stack_scalar_mod(a, self._n_inv, self._col, out=a)

    # -- fast (uint64) path ---------------------------------------------------

    #
    # One batch of rows runs through the whole stage pipeline while its
    # working set (data + scratch) is cache-resident.  All intermediates
    # live in preallocated scratch buffers (no allocator traffic on the hot
    # path), and values travel as lazy [0, 2q) representatives -- Shoup
    # products and one conditional subtraction against 2q per butterfly --
    # with a single canonicalization at the end, which leaves the output
    # bit-identical to the canonical per-stage computation.

    def _forward_rows_fast(self, a: np.ndarray, r0: int, r1: int) -> None:
        # ``a`` holds the data rows of this chunk; ``r0:r1`` indexes the
        # twiddle tables.  For tiled stacks the chunk is one repeat period
        # (table rows == data rows); a period of one broadcasts a single
        # table row over every data row of the stack.
        n = self.ring_degree
        rows = int(a.shape[0])
        q3 = self._col3[r0:r1]
        tq3 = self._two3[r0:r1]
        half = n // 2
        buf_v = _scratch("ntt-v", (rows, half))
        buf_q = _scratch("ntt-q", (rows, half))
        buf_lo = _scratch("ntt-lo", (rows, half))
        buf_hi = _scratch("ntt-hi", (rows, half))
        grid = self._grid
        switch = grid if grid else n
        t = n
        m = 1
        while m < switch:
            t //= 2
            view = a.reshape(rows, m, 2 * t)
            tw = self._psi_bitrev[r0:r1, m : 2 * m].reshape(r1 - r0, m, 1)
            sh = self._psi_shoup[r0:r1, m : 2 * m].reshape(r1 - r0, m, 1)
            self._lazy_butterflies(
                view[:, :, :t], view[:, :, t:], tw, sh, q3, tq3,
                buf_v.reshape(rows, m, t), buf_q.reshape(rows, m, t),
                buf_lo.reshape(rows, m, t), buf_hi.reshape(rows, m, t),
            )
            m *= 2
        if grid:
            block = self._block
            gbuf = _scratch("ntt-grid", (rows, block, grid))
            np.copyto(gbuf, a.reshape(rows, grid, block).transpose(0, 2, 1))
            q4 = self._col4[r0:r1]
            tq4 = self._two4[r0:r1]
            t = block
            for tw_full, sh_full in self._fw_trans:
                t //= 2
                sub = tw_full.shape[1]
                view = gbuf.reshape(rows, sub, 2 * t, grid)
                shape = (rows, sub, t, grid)
                self._lazy_butterflies(
                    view[:, :, :t, :], view[:, :, t:, :],
                    tw_full[r0:r1], sh_full[r0:r1], q4, tq4,
                    buf_v.reshape(shape), buf_q.reshape(shape),
                    buf_lo.reshape(shape), buf_hi.reshape(shape),
                )
            np.copyto(a.reshape(rows, grid, block), gbuf.transpose(0, 2, 1))
        # Canonicalize the lazy representatives once.
        work = _scratch("ntt-w", (rows, n))
        np.subtract(a, self._base_col[r0:r1], out=work)
        np.minimum(a, work, out=a)

    @staticmethod
    def _lazy_butterflies(u, x, tw, sh, q, two_q, buf_v, buf_q, buf_lo, buf_hi):
        """One forward stage on lazy representatives, entirely in scratch.

        ``v = (x * tw) mod-ish q`` lands in ``[0, 2q)`` (Shoup, no final
        correction); ``low = u + v`` and ``high = u + 2q - v`` are folded
        back below ``2q`` with one subtract+minimum each (the uint64
        wraparound of the min-trick).
        """
        np.multiply(x, sh, out=buf_q)
        buf_q >>= modmath.STACK_SHOUP_SHIFT
        buf_q *= q
        np.multiply(x, tw, out=buf_v)
        buf_v -= buf_q
        np.add(u, two_q, out=buf_hi)
        buf_hi -= buf_v
        np.add(u, buf_v, out=buf_lo)
        # u and x are no longer read; the final minimums write straight
        # into the data views, saving two copy passes.
        np.subtract(buf_lo, two_q, out=buf_q)
        np.minimum(buf_lo, buf_q, out=u)
        np.subtract(buf_hi, two_q, out=buf_q)
        np.minimum(buf_hi, buf_q, out=x)

    @staticmethod
    def _lazy_gs_butterflies(u, v, tw, sh, q, two_q, buf_v, buf_q, buf_lo, buf_hi):
        """One inverse (Gentleman-Sande) stage on lazy representatives."""
        np.add(u, v, out=buf_lo)
        np.add(u, two_q, out=buf_hi)
        buf_hi -= v
        # u and v are no longer read as inputs from here on.
        np.subtract(buf_lo, two_q, out=buf_q)
        np.minimum(buf_lo, buf_q, out=u)
        np.subtract(buf_hi, two_q, out=buf_q)
        np.minimum(buf_hi, buf_q, out=buf_hi)
        np.multiply(buf_hi, sh, out=buf_q)
        buf_q >>= modmath.STACK_SHOUP_SHIFT
        buf_q *= q
        np.multiply(buf_hi, tw, out=buf_v)
        np.subtract(buf_v, buf_q, out=v)

    def _inverse_rows_fast(self, a: np.ndarray, r0: int, r1: int) -> None:
        # Same chunk contract as ``_forward_rows_fast``: ``r0:r1`` indexes
        # the (period-sized) tables, ``a`` carries the chunk's data rows.
        n = self.ring_degree
        rows = int(a.shape[0])
        q3 = self._col3[r0:r1]
        tq3 = self._two3[r0:r1]
        half = n // 2
        buf_v = _scratch("ntt-v", (rows, half))
        buf_q = _scratch("ntt-q", (rows, half))
        buf_lo = _scratch("ntt-lo", (rows, half))
        buf_hi = _scratch("ntt-hi", (rows, half))
        grid = self._grid
        t = 1
        m = n
        if grid:
            block = self._block
            gbuf = _scratch("ntt-grid", (rows, block, grid))
            np.copyto(gbuf, a.reshape(rows, grid, block).transpose(0, 2, 1))
            q4 = self._col4[r0:r1]
            tq4 = self._two4[r0:r1]
            for tw_full, sh_full in reversed(self._inv_trans):
                sub = tw_full.shape[1]
                view = gbuf.reshape(rows, sub, 2 * t, grid)
                shape = (rows, sub, t, grid)
                self._lazy_gs_butterflies(
                    view[:, :, :t, :], view[:, :, t:, :],
                    tw_full[r0:r1], sh_full[r0:r1], q4, tq4,
                    buf_v.reshape(shape), buf_q.reshape(shape),
                    buf_lo.reshape(shape), buf_hi.reshape(shape),
                )
                t *= 2
                m //= 2
            np.copyto(a.reshape(rows, grid, block), gbuf.transpose(0, 2, 1))
        while m > 1:
            h = m // 2
            view = a.reshape(rows, h, 2 * t)
            tw = self._psi_inv_bitrev[r0:r1, h : 2 * h].reshape(r1 - r0, h, 1)
            sh = self._psi_inv_shoup[r0:r1, h : 2 * h].reshape(r1 - r0, h, 1)
            self._lazy_gs_butterflies(
                view[:, :, :t], view[:, :, t:], tw, sh, q3, tq3,
                buf_v.reshape(rows, h, t), buf_q.reshape(rows, h, t),
                buf_lo.reshape(rows, h, t), buf_hi.reshape(rows, h, t),
            )
            t *= 2
            m = h
        # Rows are left lazy (< 2q); the caller's fused N^-1 Shoup scaling
        # canonicalizes them.

    # -- double-word (dword) path ---------------------------------------------
    #
    # Moduli in (2**31, 2**62) arrive as (rows, 2, N) hi/lo digit planes.
    # Every canonical residue (< 2**62) and lazy representative (< 2q <
    # 2**63) fits one uint64 lane, so the chunk merges its planes into a
    # single (rows, N) working buffer once, runs the same lazy [0, 2q)
    # butterfly pipeline as the fast path -- with 64-bit Shoup companions
    # whose quotient estimate needs an emulated mulhi64 -- and splits back
    # at the end.  The transposed block stages are skipped (``_grid = 0``):
    # the mulhi emulation already dominates, and the standard layout keeps
    # the code identical to the per-limb schedule.

    def _forward_rows_dword(self, a: np.ndarray, r0: int, r1: int) -> None:
        n = self.ring_degree
        rows = int(a.shape[0])
        q3 = self._col3[r0:r1]
        tq3 = self._two3[r0:r1]
        half = n // 2
        merged = _scratch("ntt-dw", (rows, n))
        modmath.dword_merge(a, out=merged)
        buf_v = _scratch("ntt-v", (rows, half))
        buf_q = _scratch("ntt-q", (rows, half))
        buf_lo = _scratch("ntt-lo", (rows, half))
        buf_hi = _scratch("ntt-hi", (rows, half))
        t = n
        m = 1
        while m < n:
            t //= 2
            view = merged.reshape(rows, m, 2 * t)
            tw = self._psi_bitrev[r0:r1, m : 2 * m].reshape(r1 - r0, m, 1)
            sh_hi = self._psi_shoup_hi[r0:r1, m : 2 * m].reshape(r1 - r0, m, 1)
            sh_lo = self._psi_shoup_lo[r0:r1, m : 2 * m].reshape(r1 - r0, m, 1)
            self._lazy_dword_butterflies(
                view[:, :, :t], view[:, :, t:], tw, sh_hi, sh_lo, q3, tq3,
                buf_v.reshape(rows, m, t), buf_q.reshape(rows, m, t),
                buf_lo.reshape(rows, m, t), buf_hi.reshape(rows, m, t),
            )
            m *= 2
        # Canonicalize the lazy representatives once, then restore planes.
        work = _scratch("ntt-w", (rows, n))
        np.subtract(merged, self._base_col[r0:r1], out=work)
        np.minimum(merged, work, out=merged)
        modmath.dword_split(merged, out=a)

    def _inverse_rows_dword(self, a: np.ndarray, r0: int, r1: int) -> None:
        n = self.ring_degree
        rows = int(a.shape[0])
        q3 = self._col3[r0:r1]
        tq3 = self._two3[r0:r1]
        half = n // 2
        merged = _scratch("ntt-dw", (rows, n))
        modmath.dword_merge(a, out=merged)
        buf_v = _scratch("ntt-v", (rows, half))
        buf_q = _scratch("ntt-q", (rows, half))
        buf_lo = _scratch("ntt-lo", (rows, half))
        buf_hi = _scratch("ntt-hi", (rows, half))
        t = 1
        m = n
        while m > 1:
            h = m // 2
            view = merged.reshape(rows, h, 2 * t)
            tw = self._psi_inv_bitrev[r0:r1, h : 2 * h].reshape(r1 - r0, h, 1)
            sh_hi = self._psi_inv_shoup_hi[r0:r1, h : 2 * h].reshape(r1 - r0, h, 1)
            sh_lo = self._psi_inv_shoup_lo[r0:r1, h : 2 * h].reshape(r1 - r0, h, 1)
            self._lazy_dword_gs_butterflies(
                view[:, :, :t], view[:, :, t:], tw, sh_hi, sh_lo, q3, tq3,
                buf_v.reshape(rows, h, t), buf_q.reshape(rows, h, t),
                buf_lo.reshape(rows, h, t), buf_hi.reshape(rows, h, t),
            )
            t *= 2
            m = h
        # Rows stay lazy (< 2q) through the split; the caller's fused N^-1
        # Shoup scaling accepts any uint64 input and canonicalizes.
        modmath.dword_split(merged, out=a)

    @staticmethod
    def _lazy_dword_butterflies(u, x, tw, sh_hi, sh_lo, q, two_q,
                                buf_v, buf_q, buf_lo, buf_hi):
        """One forward stage on merged lazy representatives (q < 2**62).

        ``v = x * tw`` reduces with a 64-bit Shoup companion: the quotient
        estimate ``mulhi64(x, shoup)`` is at most one short for *any*
        uint64 ``x``, leaving ``v`` in ``[0, 2q)``; the add/sub halves fold
        back below ``2q`` with the same min-trick as the fast path (sums
        stay below ``4q < 2**64``).
        """
        q_est = modmath._dword_mulhi(x, sh_hi, sh_lo)
        np.multiply(q_est, q, out=buf_q)
        np.multiply(x, tw, out=buf_v)
        buf_v -= buf_q
        np.add(u, two_q, out=buf_hi)
        buf_hi -= buf_v
        np.add(u, buf_v, out=buf_lo)
        np.subtract(buf_lo, two_q, out=buf_q)
        np.minimum(buf_lo, buf_q, out=u)
        np.subtract(buf_hi, two_q, out=buf_q)
        np.minimum(buf_hi, buf_q, out=x)

    @staticmethod
    def _lazy_dword_gs_butterflies(u, v, tw, sh_hi, sh_lo, q, two_q,
                                   buf_v, buf_q, buf_lo, buf_hi):
        """One inverse (Gentleman-Sande) stage on merged representatives."""
        np.add(u, v, out=buf_lo)
        np.add(u, two_q, out=buf_hi)
        buf_hi -= v
        # u and v are no longer read as inputs from here on.
        np.subtract(buf_lo, two_q, out=buf_q)
        np.minimum(buf_lo, buf_q, out=u)
        np.subtract(buf_hi, two_q, out=buf_q)
        np.minimum(buf_hi, buf_q, out=buf_hi)
        q_est = modmath._dword_mulhi(buf_hi, sh_hi, sh_lo)
        np.multiply(q_est, q, out=buf_q)
        np.multiply(buf_hi, tw, out=buf_v)
        np.subtract(buf_v, buf_q, out=v)

    # -- exact (object) path --------------------------------------------------

    def _forward_object(self, a: np.ndarray) -> np.ndarray:
        n = self.ring_degree
        num_limbs = len(self.moduli)
        t = n
        m = 1
        while m < n:
            t //= 2
            view = a.reshape(num_limbs, m, 2 * t)
            twiddles = self._psi_bitrev[:, m : 2 * m].reshape(num_limbs, m, 1)
            u = view[:, :, :t]
            v = (view[:, :, t:] * twiddles) % self._col3
            low = (u + v) % self._col3
            high = (u - v) % self._col3
            view[:, :, :t] = low
            view[:, :, t:] = high
            a = view.reshape(num_limbs, n)
            m *= 2
        return a

    def _inverse_object(self, a: np.ndarray) -> np.ndarray:
        n = self.ring_degree
        num_limbs = len(self.moduli)
        t = 1
        m = n
        while m > 1:
            h = m // 2
            view = a.reshape(num_limbs, h, 2 * t)
            twiddles = self._psi_inv_bitrev[:, h : 2 * h].reshape(num_limbs, h, 1)
            u = view[:, :, :t]
            v = view[:, :, t:]
            view_sum = (u + v) % self._col3
            view_diff = ((u - v) * twiddles) % self._col3
            view[:, :, :t] = view_sum
            view[:, :, t:] = view_diff
            a = view.reshape(num_limbs, n)
            t *= 2
            m = h
        return modmath.stack_scalar_mod(a, self._n_inv, self._col)


@lru_cache(maxsize=128)
def get_stacked_engine(ring_degree: int, moduli: tuple[int, ...]) -> StackedNTTEngine:
    """Return a cached :class:`StackedNTTEngine` for a moduli tuple.

    Each CKKS level (and key-switching sub-basis, and the fused
    concatenated tuples of the batched rescale/ModDown paths) reuses its
    stacked twiddle matrices across every polynomial, like the per-modulus
    :func:`get_engine` cache.  The cache is bounded because each entry
    holds several ``(L, N)`` tables; evicted engines rebuild cheaply from
    the per-modulus tables, which stay cached.
    """
    return StackedNTTEngine(ring_degree, moduli)


def record_staged_transform(
    tag: str,
    ring_degree: int,
    moduli: tuple[int, ...],
    source: np.ndarray,
    out: np.ndarray,
    *,
    executable: bool,
) -> bool:
    """Record one full-stack transform as per-stage launches.

    The entry point for call sites that record transforms directly (the
    ModDown and rescale pipelines): under ``stage_launches`` recording
    they emit the unfused per-stage launch run plus its fusion group
    instead of one fused transform event.  Returns ``False`` -- recording
    nothing -- when the stack is off the uint64 fast path, so the caller
    falls back to its single fused transform record.
    """
    engine = get_stacked_engine(ring_degree, moduli)
    if not engine.fast:
        return False
    engine._record_stage_launches(tag, source, out, 0, len(moduli), executable)
    return True


__all__ = [
    "NTTEngine",
    "HierarchicalNTT",
    "StackedNTTEngine",
    "bit_reverse_indices",
    "is_power_of_two",
    "get_engine",
    "get_stacked_engine",
    "record_staged_transform",
    "set_scratch_budget",
    "scratch_cache_bytes",
]
