"""Negacyclic Number Theoretic Transform (NTT) engines.

Polynomial multiplication in ``Z_q[X]/(X^N + 1)`` is carried out in the
evaluation domain: the forward NTT maps a coefficient vector to its
evaluations at the odd powers of a 2N-th root of unity ``ψ``, where
multiplication is element-wise.  FIDESlib implements:

* a radix-2 Cooley-Tukey forward transform (normal-order input,
  bit-reversed output) and a Gentleman-Sande inverse transform
  (bit-reversed input, normal-order output), avoiding explicit bit
  reversal exactly as described in §III-F.4 of the paper;
* Shoup-precomputed twiddle factors so every butterfly uses the cheap
  constant-operand multiplication of Table III;
* a hierarchical/2D ("four-step") formulation (Figure 3) that splits the
  length-N transform into √N-sized sub-transforms, which is what bounds
  global-memory traffic to four accesses per element on the GPU; and
* fusion hooks -- optional element-wise pre/post scaling folded into the
  transform, mirroring the Rescale/ModDown/HMult kernel fusions of
  §III-F.5.

The engines operate on NumPy arrays using the backend selected by
:func:`repro.core.modmath.dtype_for_modulus`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.core import modmath
from repro.core.primes import find_root_of_unity


def bit_reverse_indices(n: int) -> np.ndarray:
    """Return the bit-reversal permutation of ``range(n)`` (n a power of two)."""
    bits = n.bit_length() - 1
    indices = np.arange(n, dtype=np.int64)
    result = np.zeros(n, dtype=np.int64)
    for b in range(bits):
        result |= ((indices >> b) & 1) << (bits - 1 - b)
    return result


def is_power_of_two(n: int) -> bool:
    """Return True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


@dataclass
class NTTEngine:
    """Radix-2 negacyclic NTT/iNTT for a single prime modulus.

    Parameters
    ----------
    ring_degree:
        Polynomial degree bound ``N`` (power of two).
    modulus:
        NTT-friendly prime with ``modulus ≡ 1 (mod 2N)``.
    psi:
        Optional 2N-th primitive root of unity; derived automatically when
        omitted.
    """

    ring_degree: int
    modulus: int
    psi: int | None = None
    _psi_bitrev: np.ndarray = field(init=False, repr=False)
    _psi_inv_bitrev: np.ndarray = field(init=False, repr=False)
    _psi_powers: np.ndarray = field(init=False, repr=False)
    _psi_inv_powers: np.ndarray = field(init=False, repr=False)
    _n_inv: int = field(init=False, repr=False)

    def __post_init__(self) -> None:
        n, q = self.ring_degree, self.modulus
        if not is_power_of_two(n):
            raise ValueError(f"ring degree must be a power of two, got {n}")
        if (q - 1) % (2 * n) != 0:
            raise ValueError(f"modulus {q} is not NTT-friendly for N={n}")
        if self.psi is None:
            self.psi = find_root_of_unity(2 * n, q)
        psi = self.psi
        if modmath.pow_mod(psi, 2 * n, q) != 1 or modmath.pow_mod(psi, n, q) == 1:
            raise ValueError("psi is not a primitive 2N-th root of unity")
        psi_inv = modmath.inv_mod(psi, q)
        powers = np.empty(n, dtype=object)
        inv_powers = np.empty(n, dtype=object)
        acc = 1
        acc_inv = 1
        for i in range(n):
            powers[i] = acc
            inv_powers[i] = acc_inv
            acc = (acc * psi) % q
            acc_inv = (acc_inv * psi_inv) % q
        rev = bit_reverse_indices(n)
        self._psi_powers = modmath.as_residue_array(powers, q)
        self._psi_inv_powers = modmath.as_residue_array(inv_powers, q)
        self._psi_bitrev = modmath.as_residue_array(powers[rev], q)
        self._psi_inv_bitrev = modmath.as_residue_array(inv_powers[rev], q)
        self._n_inv = modmath.inv_mod(n, q)

    # -- public API ---------------------------------------------------------

    @property
    def n_inverse(self) -> int:
        """Return ``N^-1 mod q`` applied by the inverse transform."""
        return self._n_inv

    def forward(
        self,
        coefficients: np.ndarray,
        *,
        premultiply: int | None = None,
        postmultiply: int | None = None,
    ) -> np.ndarray:
        """Forward negacyclic NTT (normal-order input, bit-reversed output).

        ``premultiply``/``postmultiply`` are optional scalar factors fused
        into the transform, mirroring the SwitchModulus/Rescale fusions the
        paper folds into its NTT kernels.
        """
        q = self.modulus
        a = modmath.as_residue_array(coefficients, q).copy()
        if premultiply is not None:
            a = modmath.vec_mul_scalar_mod(a, premultiply, q)
        n = self.ring_degree
        t = n
        m = 1
        while m < n:
            t //= 2
            view = a.reshape(m, 2 * t)
            twiddles = self._psi_bitrev[m : 2 * m]
            u = view[:, :t].copy()
            v = modmath.vec_mul_mod(view[:, t:], twiddles.reshape(m, 1), q)
            view[:, :t] = modmath.vec_add_mod(u, v, q)
            view[:, t:] = modmath.vec_sub_mod(u, v, q)
            a = view.reshape(n)
            m *= 2
        if postmultiply is not None:
            a = modmath.vec_mul_scalar_mod(a, postmultiply, q)
        return a

    def inverse(
        self,
        evaluations: np.ndarray,
        *,
        premultiply: int | None = None,
        postmultiply: int | None = None,
    ) -> np.ndarray:
        """Inverse negacyclic NTT (bit-reversed input, normal-order output).

        Implemented with Gentleman-Sande butterflies so no explicit
        bit-reversal pass is needed (paper §III-F.4).
        """
        q = self.modulus
        a = modmath.as_residue_array(evaluations, q).copy()
        if premultiply is not None:
            a = modmath.vec_mul_scalar_mod(a, premultiply, q)
        n = self.ring_degree
        t = 1
        m = n
        while m > 1:
            h = m // 2
            view = a.reshape(h, 2 * t)
            twiddles = self._psi_inv_bitrev[h : 2 * h]
            u = view[:, :t]
            v = view[:, t:]
            view_sum = modmath.vec_add_mod(u, v, q)
            view_diff = modmath.vec_mul_mod(
                modmath.vec_sub_mod(u, v, q), twiddles.reshape(h, 1), q
            )
            view[:, :t] = view_sum
            view[:, t:] = view_diff
            a = view.reshape(n)
            t *= 2
            m = h
        scale = self._n_inv
        if postmultiply is not None:
            scale = modmath.mul_mod(scale, postmultiply % q, q)
        return modmath.vec_mul_scalar_mod(a, scale, q)

    def negacyclic_multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Multiply two coefficient-domain polynomials modulo ``X^N + 1``."""
        fa = self.forward(a)
        fb = self.forward(b)
        return self.inverse(modmath.vec_mul_mod(fa, fb, self.modulus))

    def shoup_twiddles(self) -> np.ndarray:
        """Return Shoup precomputations for the bit-reversed twiddle table.

        These are the constants the GPU kernels use to replace the wide
        modular multiplications in the butterflies with Shoup
        multiplications (one wide + two low multiplies per Table III).
        """
        q = self.modulus
        return np.array(
            [(int(w) << modmath.WORD_BITS) // q for w in self._psi_bitrev],
            dtype=object,
        )


@dataclass
class HierarchicalNTT:
    """Four-step hierarchical/2D negacyclic NTT (Figure 3 of the paper).

    The length-N transform is decomposed into ``N1 x N2`` sub-transforms
    (``N1, N2 ≈ √N``):

    1. twist the input by ``ψ^j`` (turning the negacyclic transform into a
       cyclic one),
    2. column transforms of size ``N1``,
    3. multiplication by inter-block twiddle factors computed "on the fly"
       in the GPU implementation,
    4. row transforms of size ``N2`` followed by a transpose.

    On a GPU this bounds global-memory traffic to four accesses per
    element; here the same structure is reproduced and the per-pass memory
    traffic is accounted for so the performance model can consume it.
    Results are produced in natural order and agree with
    :class:`NTTEngine` up to the output permutation (verified by the test
    suite through round-trips and the convolution theorem).
    """

    ring_degree: int
    modulus: int
    psi: int | None = None

    def __post_init__(self) -> None:
        n, q = self.ring_degree, self.modulus
        if not is_power_of_two(n):
            raise ValueError(f"ring degree must be a power of two, got {n}")
        if self.psi is None:
            self.psi = find_root_of_unity(2 * n, q)
        psi = self.psi
        self._omega = modmath.mul_mod(psi, psi, q)  # primitive N-th root
        log_n = n.bit_length() - 1
        self._n1 = 1 << (log_n // 2)
        self._n2 = n // self._n1
        self._psi_powers = modmath.as_residue_array(
            np.array([modmath.pow_mod(psi, j, q) for j in range(n)], dtype=object), q
        )
        self._psi_inv_powers = modmath.as_residue_array(
            np.array(
                [modmath.pow_mod(modmath.inv_mod(psi, q), j, q) for j in range(n)],
                dtype=object,
            ),
            q,
        )
        self._col_engine = _CyclicNTT(self._n1, q, modmath.pow_mod(self._omega, self._n2, q))
        self._row_engine = _CyclicNTT(self._n2, q, modmath.pow_mod(self._omega, self._n1, q))
        self._inter_twiddles = self._build_inter_twiddles(inverse=False)
        self._inter_twiddles_inv = self._build_inter_twiddles(inverse=True)
        self._n_inv = modmath.inv_mod(n, q)
        self.memory_passes = 4  # element loads per transform, as in Figure 3

    def _build_inter_twiddles(self, *, inverse: bool) -> np.ndarray:
        q = self.modulus
        omega = self._omega if not inverse else modmath.inv_mod(self._omega, q)
        rows = np.empty((self._n1, self._n2), dtype=object)
        for i in range(self._n1):
            w = modmath.pow_mod(omega, i, q)
            acc = 1
            for j in range(self._n2):
                rows[i, j] = acc
                acc = (acc * w) % q
        return modmath.as_residue_array(rows, q)

    def forward(self, coefficients: np.ndarray) -> np.ndarray:
        """Forward negacyclic NTT in natural order via the four-step method."""
        q = self.modulus
        a = modmath.as_residue_array(coefficients, q)
        a = modmath.vec_mul_mod(a, self._psi_powers, q)  # negacyclic twist
        # Pass 1: load coefficients as an (n1, n2) grid, M[j1][j2] = a[j1*n2+j2].
        grid = a.reshape(self._n1, self._n2)
        # Pass 2: size-n1 column transforms (the sqrt(N)-sized sub-FFTs of Fig. 3).
        grid = self._col_engine.forward_batch(grid.T).T
        # Pass 3: inter-block twiddles (computed "on the fly" by the GPU kernel).
        grid = modmath.vec_mul_mod(grid, self._inter_twiddles, q)
        # Pass 4: size-n2 row transforms followed by the output transpose.
        grid = self._row_engine.forward_batch(grid)
        return grid.T.reshape(self.ring_degree)

    def inverse(self, evaluations: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`forward` (natural-order input and output)."""
        q = self.modulus
        grid = modmath.as_residue_array(evaluations, q).reshape(self._n2, self._n1).T
        grid = self._row_engine.inverse_batch(grid)
        grid = modmath.vec_mul_mod(grid, self._inter_twiddles_inv, q)
        grid = self._col_engine.inverse_batch(grid.T).T
        a = grid.reshape(self.ring_degree)
        a = modmath.vec_mul_mod(a, self._psi_inv_powers, q)
        return a

    def negacyclic_multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Multiply two coefficient-domain polynomials modulo ``X^N + 1``."""
        fa = self.forward(a)
        fb = self.forward(b)
        return self.inverse(modmath.vec_mul_mod(fa, fb, self.modulus))


class _CyclicNTT:
    """Cyclic (DFT-style) NTT of a power-of-two size used by the 2D scheme."""

    def __init__(self, size: int, modulus: int, omega: int) -> None:
        if not is_power_of_two(size):
            raise ValueError("cyclic NTT size must be a power of two")
        if modmath.pow_mod(omega, size, modulus) != 1:
            raise ValueError("omega is not a size-th root of unity")
        self.size = size
        self.modulus = modulus
        self.omega = omega
        self._matrix = self._build_matrix(omega)
        self._matrix_inv = self._build_matrix(modmath.inv_mod(omega, modulus))
        self._size_inv = modmath.inv_mod(size, modulus)

    def _build_matrix(self, omega: int) -> np.ndarray:
        q = self.modulus
        rows = np.empty((self.size, self.size), dtype=object)
        for i in range(self.size):
            w = modmath.pow_mod(omega, i, q)
            acc = 1
            for j in range(self.size):
                rows[i, j] = acc
                acc = (acc * w) % q
        return rows

    def _apply(self, matrix: np.ndarray, batch: np.ndarray) -> np.ndarray:
        q = self.modulus
        data = np.array([[int(x) for x in row] for row in np.atleast_2d(batch)], dtype=object)
        out = data.dot(matrix.T) % q
        return modmath.as_residue_array(out, q)

    def forward_batch(self, batch: np.ndarray) -> np.ndarray:
        """Transform each row of ``batch`` (shape ``(rows, size)``)."""
        return self._apply(self._matrix, batch)

    def inverse_batch(self, batch: np.ndarray) -> np.ndarray:
        """Inverse-transform each row of ``batch``."""
        out = self._apply(self._matrix_inv, batch)
        return modmath.vec_mul_scalar_mod(out, self._size_inv, self.modulus)


@lru_cache(maxsize=None)
def get_engine(ring_degree: int, modulus: int, psi: int | None = None) -> NTTEngine:
    """Return a cached :class:`NTTEngine` for ``(ring_degree, modulus)``.

    Mirrors FIDESlib's singleton precomputation: twiddle tables are built
    once per context and shared by every kernel launch.
    """
    return NTTEngine(ring_degree=ring_degree, modulus=modulus, psi=psi)


__all__ = [
    "NTTEngine",
    "HierarchicalNTT",
    "bit_reverse_indices",
    "is_power_of_two",
    "get_engine",
]
