"""Residue Number System (RNS) bases and fast base conversion.

CKKS ciphertext moduli are hundreds to thousands of bits wide; the RNS
technique (Cheon et al. [35]) represents every coefficient by its residues
modulo a basis of word-sized primes ``B = {q_0, ..., q_l}`` so all
arithmetic stays within machine words.  Three ingredients live here:

* :class:`RNSBasis` -- a prime basis with its CRT constants
  (``Q``, ``q̂_i = Q/q_i``, ``q̂_i^{-1} mod q_i``).
* :class:`BaseConverter` -- the fast base conversion of Equation 1 of the
  paper, the core of ModUp / ModDown / Rescale.  It is implemented, as the
  paper describes, as a modular matrix-vector product preceded by a
  limb-wise scaling, with the partial dot products accumulated exactly
  (the 128-bit accumulator of §III-F.3) and reduced only once per output
  element.
* digit-decomposition helpers used by hybrid key switching (the ``dnum``
  partition of the basis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core import modmath
from repro.core.dispatch import get_dispatcher

_DISPATCH = get_dispatcher()


@dataclass(frozen=True)
class RNSBasis:
    """A basis of coprime word-sized moduli with precomputed CRT constants."""

    moduli: tuple[int, ...]
    modulus: int = field(init=False)
    q_hat: tuple[int, ...] = field(init=False)
    q_hat_inv: tuple[int, ...] = field(init=False)

    def __init__(self, moduli: Sequence[int]) -> None:
        moduli = tuple(int(q) for q in moduli)
        if not moduli:
            raise ValueError("an RNS basis needs at least one modulus")
        if len(set(moduli)) != len(moduli):
            raise ValueError("RNS moduli must be distinct")
        product = 1
        for q in moduli:
            product *= q
        q_hat = tuple(product // q for q in moduli)
        q_hat_inv = tuple(
            modmath.inv_mod(h % q, q) for h, q in zip(q_hat, moduli)
        )
        object.__setattr__(self, "moduli", moduli)
        object.__setattr__(self, "modulus", product)
        object.__setattr__(self, "q_hat", q_hat)
        object.__setattr__(self, "q_hat_inv", q_hat_inv)

    def __len__(self) -> int:
        return len(self.moduli)

    def __iter__(self):
        return iter(self.moduli)

    def subbasis(self, count: int) -> "RNSBasis":
        """Return the basis formed by the first ``count`` moduli."""
        if not 1 <= count <= len(self.moduli):
            raise ValueError(f"invalid sub-basis size {count}")
        return RNSBasis(self.moduli[:count])

    # -- conversions between integers and residue vectors --------------------

    def to_rns(self, value: int) -> list[int]:
        """Return the residue vector of a (possibly negative) integer."""
        return [int(value) % q for q in self.moduli]

    def decompose(self, coefficients: Sequence[int]) -> list[np.ndarray]:
        """Decompose integer coefficients into one residue array per limb."""
        limbs = []
        for q in self.moduli:
            limbs.append(
                modmath.as_residue_array(
                    np.array([int(c) % q for c in coefficients], dtype=object), q
                )
            )
        return limbs

    def crt_reconstruct(self, residues: Sequence[int]) -> int:
        """Recombine one residue per modulus into the value in ``[0, Q)``."""
        if len(residues) != len(self.moduli):
            raise ValueError("residue count does not match basis size")
        total = 0
        for r, q_hat, q_hat_inv in zip(residues, self.q_hat, self.q_hat_inv):
            total += q_hat * ((int(r) * q_hat_inv) % (self.modulus // q_hat))
        return total % self.modulus

    def compose(self, limbs: Sequence[np.ndarray], *, centered: bool = True) -> list[int]:
        """Recombine per-limb residue arrays into integer coefficients.

        With ``centered=True`` the result is mapped to ``(-Q/2, Q/2]``,
        which is the signed convention CKKS decoding expects.  The CRT sum
        is evaluated as vectorized object-array expressions across all
        coefficients at once (no per-coefficient Python loop).
        """
        if len(limbs) != len(self.moduli):
            raise ValueError("limb count does not match basis size")
        length = len(limbs[0])
        big_q = self.modulus
        half = big_q >> 1
        total = np.zeros(length, dtype=object)
        for row, q, q_hat, q_hat_inv in zip(limbs, self.moduli, self.q_hat, self.q_hat_inv):
            residues = modmath.object_row(np.asarray(row).ravel())
            total = total + q_hat * ((residues * q_hat_inv) % q)
        total = total % big_q
        if centered:
            total = np.where(total > half, total - big_q, total)
        return [int(v) for v in total]


class BaseConverter:
    """Fast (approximate) base conversion ``Conv_{B' -> B}`` of Equation 1.

    Given residues of ``x`` under the input basis ``B'``, produces residues
    under the output basis ``B`` of a value congruent to ``x`` up to a small
    multiple ``α·Q_{B'}`` with ``0 <= α < |B'|`` -- the standard HPS
    approximation whose error CKKS absorbs into its noise.  The computation
    is exactly the matrix-matrix product the paper describes: a limb-wise
    scaling ``x_i · q̂_i^{-1} mod q_i`` followed by accumulation against the
    precomputed ``[q̂_i]_{p_k}`` table with one final reduction per output
    element.
    """

    def __init__(self, source: RNSBasis, target: RNSBasis) -> None:
        overlap = set(source.moduli) & set(target.moduli)
        if overlap:
            raise ValueError(f"source and target bases overlap: {sorted(overlap)}")
        self.source = source
        self.target = target
        # [q̂_i]_{p_k} table, indexed [k][i] as in Equation 1.
        self.q_hat_mod_target = [
            [h % p for h in source.q_hat] for p in target.moduli
        ]
        self.q_hat_inv = list(source.q_hat_inv)
        # Q mod p_k, used by the exact (flooring) variant.
        self.source_modulus_mod_target = [source.modulus % p for p in target.moduli]
        # Stacked tables for the batched (limb-stack) conversion path.
        self._source_col = modmath.moduli_column(source.moduli)
        self._target_col = modmath.moduli_column(target.moduli)
        self._source_backend = modmath.stack_backend(self._source_col)
        self._target_backend = modmath.stack_backend(self._target_col)
        exact = modmath.BACKEND_OBJECT in (
            self._source_backend, self._target_backend
        )
        fast = self._all_fast()
        table_dtype = np.object_ if exact else np.uint64
        #: (|target|, |source|) matrix of [q̂_i]_{p_k} from Equation 1.
        self._q_hat_matrix = np.array(self.q_hat_mod_target, dtype=table_dtype)
        self._q_hat_inv_col = np.array(
            [inv % q for inv, q in zip(self.q_hat_inv, source.moduli)],
            dtype=table_dtype,
        ).reshape(-1, 1)
        if fast:
            # Shoup companion of the scaling constants, so the limb-wise
            # scaling step needs no hardware division.
            self._q_hat_inv_shoup = modmath.shoup_column(
                self._q_hat_inv_col, self._source_col
            )
        elif not exact:
            # Double-word conversion path: the scaling companions match the
            # source backend, and the matrix gets 64-bit Shoup companions
            # under the *target* moduli -- the quotient estimate is valid
            # for any uint64 operand, which is exactly what the scaled
            # source rows (canonical mod q_i, not mod p_k) require.
            if self._source_backend == modmath.BACKEND_UINT64:
                self._q_hat_inv_shoup = modmath.shoup_column(
                    self._q_hat_inv_col, self._source_col
                )
            else:
                self._q_hat_inv_shoup = modmath.dword_shoup_column(
                    self._q_hat_inv_col, self._source_col
                )
            self._q_hat_shoup_matrix = modmath.dword_shoup_column(
                self._q_hat_matrix, self._target_col
            )

    def _all_fast(self) -> bool:
        return all(
            modmath.is_fast_modulus(q)
            for q in (*self.source.moduli, *self.target.moduli)
        )

    def _scaled_limbs(self, limbs: Sequence[np.ndarray], fast: bool) -> list[np.ndarray]:
        """Return the limb-wise scaling ``x_i * q̂_i^{-1} mod q_i`` of Eq. 1."""
        scaled = []
        for limb, q, inv in zip(limbs, self.source.moduli, self.q_hat_inv):
            if fast:
                scaled.append(modmath.vec_mul_scalar_mod(
                    modmath.as_residue_array(limb, q), inv, q))
            else:
                scaled.append(np.array(
                    [(int(v) * inv) % q for v in np.asarray(limb).ravel()],
                    dtype=object,
                ))
        return scaled

    def convert(self, limbs: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Convert per-limb residue arrays from the source to the target basis."""
        if len(limbs) != len(self.source):
            raise ValueError(
                f"expected {len(self.source)} source limbs, got {len(limbs)}"
            )
        stack = modmath.as_residue_stack(limbs, self.source.moduli)
        converted = self.convert_stack(stack)
        if modmath.is_dword_stack(converted):
            converted = modmath.dword_merge(converted)
        return [converted[k] for k in range(len(self.target))]

    def convert_stack(
        self, stack: np.ndarray, *, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Batched base conversion of a canonical ``(|source|, N)`` stack.

        The whole Equation-1 computation -- limb-wise scaling followed by
        the ``[q̂_i]_{p_k}`` matrix accumulation -- runs as broadcast NumPy
        expressions with no per-limb Python loop on the fast backend.  The
        accumulation is the wide accumulator of §III-F.3 via
        :func:`repro.core.modmath.stack_dot_mod`: raw 64-bit products sum
        across source limbs with an intermediate fold every four terms
        (``4·(q-1)² < 2**64`` for fast moduli) and one final reduction per
        output element.

        With ``out=`` the converted rows land directly in the caller's
        buffer (the consumer's layout), so ModUp/ModDown need no staging
        copy between conversion and the transform that follows.
        """
        source_stack = np.asarray(stack)
        with _DISPATCH.suppressed():
            fast = self._all_fast()
            exact = modmath.BACKEND_OBJECT in (
                self._source_backend, self._target_backend
            )
            if fast:
                stack = modmath.coerce_stack(source_stack, self._source_col)
                converted = modmath.stack_dot_mod(
                    [
                        (scaled_row[None, :], self._q_hat_matrix[:, i : i + 1])
                        for i, scaled_row in enumerate(
                            modmath.stack_shoup_mul(
                                stack,
                                self._q_hat_inv_col,
                                self._q_hat_inv_shoup,
                                self._source_col,
                            )
                        )
                    ],
                    self._target_col,
                    out=out,
                )
            elif not exact:
                # Double-word path.  The scaled source rows are canonical
                # mod q_i but *not* mod p_k, so the accumulation cannot use
                # the Barrett product (its quotient bound needs x < p_k**2);
                # each term is instead a constant-operand Shoup multiply
                # whose 64-bit companion is exact for any uint64 input,
                # folded in with one canonical add per source limb.
                stack = modmath.coerce_stack(source_stack, self._source_col)
                scaled = modmath.stack_shoup_mul(
                    stack,
                    self._q_hat_inv_col,
                    self._q_hat_inv_shoup,
                    self._source_col,
                )
                merged = (
                    modmath.dword_merge(scaled)
                    if modmath.is_dword_stack(scaled)
                    else scaled
                )
                dw = modmath._dword_tables(self._target_col)
                acc = None
                for i in range(len(self.source)):
                    term = modmath._dword_shoup_mul_merged(
                        merged[i][None, :],
                        self._q_hat_matrix[:, i : i + 1],
                        self._q_hat_shoup_matrix[:, i : i + 1],
                        dw,
                    )
                    if acc is None:
                        acc = term
                    else:
                        acc += term
                        np.minimum(acc, acc - dw.q, out=acc)
                if self._target_backend == modmath.BACKEND_DWORD:
                    converted = modmath.dword_split(acc, out=out)
                elif out is not None:
                    np.copyto(out, acc)
                    converted = out
                else:
                    converted = acc
            else:
                scaled = [
                    modmath.object_row(row) * inv % q
                    for row, inv, q in zip(stack, self.q_hat_inv, self.source.moduli)
                ]
                outputs = []
                length = stack.shape[1]
                for k, p in enumerate(self.target.moduli):
                    row = self.q_hat_mod_target[k]
                    acc = np.zeros(length, dtype=object)
                    for i in range(len(self.source)):
                        acc = acc + scaled[i] * row[i]
                    outputs.append(modmath.as_residue_array(acc % p, p))
                converted = np.stack(
                    [modmath.object_row(row) for row in outputs]
                ) if not modmath.all_fast_moduli(self.target.moduli) else np.stack(outputs)
                if out is not None:
                    out[...] = converted
                    converted = out
        if _DISPATCH.recording:
            replay = None
            if _DISPATCH.executable_recording:

                def replay(reads, writes, _conv=self):
                    _conv.convert_stack(reads[0], out=writes[0])

            _DISPATCH.base_conversion(
                "baseconv",
                len(self.source),
                len(self.target),
                reads=(source_stack,),
                writes=(converted,),
                replay=replay,
            )
        return converted

    def convert_exact(self, limbs: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Exact base conversion removing the ``α·Q`` overshoot.

        Uses the floating-point estimate of ``α = round(Σ y_i / q_i)`` from
        the HPS full-RNS variant; exact for the parameter ranges used here.
        The unit tests compare :meth:`convert` against this reference to
        bound the approximation error.
        """
        if len(limbs) != len(self.source):
            raise ValueError(
                f"expected {len(self.source)} source limbs, got {len(limbs)}"
            )
        length = len(limbs[0])
        fast = self._all_fast()
        scaled = self._scaled_limbs(limbs, fast)
        fractions = np.zeros(length, dtype=np.float64)
        for y, q in zip(scaled, self.source.moduli):
            fractions += np.array([float(v) for v in y]) / float(q)
        alphas = np.rint(fractions).astype(np.int64)
        alpha_obj = np.array([int(a) for a in alphas], dtype=object)
        outputs = []
        for k, p in enumerate(self.target.moduli):
            row = self.q_hat_mod_target[k]
            q_mod_p = self.source_modulus_mod_target[k]
            acc = np.zeros(length, dtype=object)
            for i in range(len(self.source)):
                acc = acc + np.array([int(v) for v in scaled[i]], dtype=object) * row[i]
            acc = acc - alpha_obj * q_mod_p
            outputs.append(modmath.as_residue_array(acc % p, p))
        return outputs

    def shared_memory_bytes_per_thread(self) -> int:
        """Shared-memory bytes per GPU thread used by the kernel (§III-F.3)."""
        return 4 * len(self.source)


def partition_digits(moduli: Sequence[int], dnum: int) -> list[list[int]]:
    """Split a basis into ``dnum`` contiguous digits for hybrid key switching.

    The first digits receive ``ceil(len/dnum)`` moduli so that every digit
    is non-empty whenever ``len(moduli) >= 1``.
    """
    moduli = list(moduli)
    if dnum <= 0:
        raise ValueError("dnum must be positive")
    per_digit = -(-len(moduli) // dnum)  # ceil division
    digits = []
    for start in range(0, len(moduli), per_digit):
        digits.append(moduli[start : start + per_digit])
    return digits


def digit_of_limb(limb_index: int, total_limbs: int, dnum: int) -> int:
    """Return the digit index that limb ``limb_index`` belongs to."""
    per_digit = -(-total_limbs // dnum)
    return limb_index // per_digit


__all__ = [
    "RNSBasis",
    "BaseConverter",
    "partition_digits",
    "digit_of_limb",
]
