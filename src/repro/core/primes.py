"""NTT-friendly prime generation and roots of unity.

The RNS decomposition of the CKKS modulus ``Q`` requires primes
``q_i ≡ 1 (mod 2N)`` so that the ring ``Z_{q_i}[X]/(X^N + 1)`` admits a
2N-th primitive root of unity ``ψ`` and the negacyclic NTT exists.  This
module generates such primes near a requested bit size (the scaling factor
``Δ``), finds primitive roots, and exposes the ψ tables the NTT engine
precomputes during :class:`~repro.ckks.context.Context` creation.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.core.modmath import pow_mod

_MILLER_RABIN_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin primality test for 64-bit-sized integers.

    The witness set is sufficient for all integers below 3.3 * 10**24,
    comfortably covering the word-sized moduli used by CKKS.
    """
    if n < 2:
        return False
    for p in _MILLER_RABIN_WITNESSES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MILLER_RABIN_WITNESSES:
        x = pow_mod(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_ntt_primes(
    count: int,
    bit_size: int,
    ring_degree: int,
    *,
    exclude: Iterable[int] = (),
    descending_from_top: bool = True,
) -> list[int]:
    """Generate ``count`` distinct primes of ``bit_size`` bits with ``p ≡ 1 mod 2N``.

    Parameters
    ----------
    count:
        Number of primes to generate.
    bit_size:
        Target bit width of each prime (e.g. 59 for the paper's Δ = 2^59
        parameter sets, or ~28-30 for the fast NumPy backend).
    ring_degree:
        The polynomial degree bound ``N``; primes are congruent to 1 modulo
        ``2N`` so the negacyclic NTT exists.
    exclude:
        Primes that must not be reused (e.g. already chosen for another
        part of the basis).
    descending_from_top:
        When True, candidates start just below ``2**bit_size`` and walk
        downwards, keeping the primes as close to the scaling factor as
        possible (which is what keeps rescaling precision high).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if ring_degree <= 0 or ring_degree & (ring_degree - 1):
        raise ValueError(f"ring_degree must be a power of two, got {ring_degree}")
    step = 2 * ring_degree
    if bit_size <= step.bit_length():
        raise ValueError(
            f"bit_size={bit_size} too small for ring degree {ring_degree}"
        )
    excluded = set(exclude)
    primes: list[int] = []
    if descending_from_top:
        candidate = (1 << bit_size) - step + 1
        # Align to p ≡ 1 (mod 2N).
        candidate -= (candidate - 1) % step
        delta = -step
    else:
        candidate = (1 << (bit_size - 1)) + 1
        candidate += (-(candidate - 1)) % step
        delta = step
    lower = 1 << (bit_size - 1)
    upper = 1 << (bit_size + 1)
    while len(primes) < count:
        if candidate <= lower or candidate >= upper:
            raise RuntimeError(
                f"exhausted {bit_size}-bit candidates for 2N={step}: "
                f"found {len(primes)}/{count}"
            )
        if candidate not in excluded and is_prime(candidate):
            primes.append(candidate)
            excluded.add(candidate)
        candidate += delta
    return primes


def find_ntt_prime_near(
    target: float,
    ring_degree: int,
    *,
    exclude: Iterable[int] = (),
) -> int:
    """Return the NTT-friendly prime closest to ``target``.

    Used by the scale-ladder prime selection (Kim et al. [36], the
    "reduced approximation error" rescaling): each rescaling prime is
    chosen as close as possible to the scale the ciphertext will have at
    that level so that per-level scaling factors stay aligned.
    """
    step = 2 * ring_degree
    excluded = set(exclude)
    base = int(round(target))
    # Align the starting candidate to p ≡ 1 (mod 2N).
    start = base - ((base - 1) % step)
    for offset in range(0, 1 << 22):
        for candidate in (start + offset * step, start - offset * step):
            if candidate <= step:
                continue
            if candidate in excluded:
                continue
            if is_prime(candidate):
                return candidate
    raise RuntimeError(f"no NTT prime found near {target} for 2N={step}")


def find_primitive_root(q: int) -> int:
    """Return a generator of the multiplicative group of ``Z_q`` (q prime)."""
    if q == 2:
        return 1
    order = q - 1
    factors = _prime_factors(order)
    rng = random.Random(0xF1DE5)
    for _ in range(10_000):
        candidate = rng.randrange(2, q - 1)
        if all(pow_mod(candidate, order // f, q) != 1 for f in factors):
            return candidate
    raise RuntimeError(f"failed to find a primitive root modulo {q}")


def find_root_of_unity(order: int, q: int) -> int:
    """Return a primitive ``order``-th root of unity modulo prime ``q``.

    Requires ``order`` to divide ``q - 1``; for the negacyclic NTT the
    order is ``2N``.
    """
    if (q - 1) % order != 0:
        raise ValueError(f"{order} does not divide q-1 for q={q}")
    generator = find_primitive_root(q)
    root = pow_mod(generator, (q - 1) // order, q)
    # Defensive check: the root must have exact order `order`.
    if pow_mod(root, order, q) != 1 or pow_mod(root, order // 2, q) == 1:
        raise RuntimeError(f"derived root of unity has wrong order for q={q}")
    return root


def _prime_factors(n: int) -> list[int]:
    """Return the distinct prime factors of ``n`` by trial division + Pollard rho."""
    factors: set[int] = set()
    n = int(n)
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47):
        while n % p == 0:
            factors.add(p)
            n //= p
    if n == 1:
        return sorted(factors)
    stack = [n]
    while stack:
        m = stack.pop()
        if m == 1:
            continue
        if is_prime(m):
            factors.add(m)
            continue
        d = _pollard_rho(m)
        stack.append(d)
        stack.append(m // d)
    return sorted(factors)


def _pollard_rho(n: int) -> int:
    """Return a non-trivial factor of composite ``n`` (Pollard's rho)."""
    if n % 2 == 0:
        return 2
    rng = random.Random(n)
    while True:
        x = rng.randrange(2, n - 1)
        y = x
        c = rng.randrange(1, n - 1)
        d = 1
        while d == 1:
            x = (x * x + c) % n
            y = (y * y + c) % n
            y = (y * y + c) % n
            d = _gcd(abs(x - y), n)
        if d != n:
            return d


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


def prime_basis_product(primes: Sequence[int]) -> int:
    """Return the product of a prime basis (the composite modulus ``Q``)."""
    product = 1
    for p in primes:
        product *= p
    return product


__all__ = [
    "is_prime",
    "generate_ntt_primes",
    "find_primitive_root",
    "find_root_of_unity",
    "prime_basis_product",
]
