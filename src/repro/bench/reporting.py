"""Benchmark result tables and formatting helpers."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable


def format_seconds(seconds: float) -> str:
    """Format a duration with the unit the paper's tables use."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.2f} µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.2f} s"


def speedup(baseline_seconds: float, candidate_seconds: float) -> float:
    """Return how many times faster ``candidate`` is than ``baseline``."""
    if candidate_seconds <= 0:
        raise ValueError("candidate time must be positive")
    return baseline_seconds / candidate_seconds


@dataclass
class BenchmarkTable:
    """A named table of benchmark results.

    Rows are added with :meth:`add_row` as dictionaries; columns are
    discovered from the union of row keys, preserving insertion order.
    """

    title: str
    note: str = ""
    rows: list[dict] = field(default_factory=list)

    def add_row(self, **values) -> None:
        """Append one result row."""
        self.rows.append(values)

    @property
    def columns(self) -> list[str]:
        """Column names in first-appearance order."""
        names: list[str] = []
        for row in self.rows:
            for key in row:
                if key not in names:
                    names.append(key)
        return names

    def _formatted(self) -> list[list[str]]:
        columns = self.columns
        table = [columns]
        for row in self.rows:
            rendered = []
            for column in columns:
                value = row.get(column, "")
                if isinstance(value, float):
                    rendered.append(f"{value:.4g}")
                else:
                    rendered.append(str(value))
            table.append(rendered)
        return table

    def to_text(self) -> str:
        """Render as an aligned plain-text table."""
        cells = self._formatted()
        widths = [max(len(row[i]) for row in cells) for i in range(len(cells[0]))]
        lines = [f"== {self.title} =="]
        if self.note:
            lines.append(self.note)
        for index, row in enumerate(cells):
            lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Render as a GitHub-flavoured markdown table."""
        cells = self._formatted()
        lines = [f"### {self.title}", ""]
        if self.note:
            lines += [self.note, ""]
        lines.append("| " + " | ".join(cells[0]) + " |")
        lines.append("|" + "|".join(["---"] * len(cells[0])) + "|")
        for row in cells[1:]:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Render as CSV."""
        cells = self._formatted()
        return "\n".join(",".join(row) for row in cells)

    def to_json(self, **metadata) -> str:
        """Render as a JSON document (machine-readable BENCH artifact).

        Row values are emitted as-is (numbers stay numbers); ``metadata``
        keyword arguments are merged into the top-level object, which is
        how runners attach environment information to a committed BENCH
        file.
        """
        payload = {
            "title": self.title,
            "note": self.note,
            "columns": self.columns,
            "rows": self.rows,
        }
        payload.update(metadata)
        return json.dumps(payload, indent=2, default=str)

    def column_values(self, column: str) -> list:
        """Return the raw values of one column (missing entries skipped)."""
        return [row[column] for row in self.rows if column in row]


__all__ = ["BenchmarkTable", "format_seconds", "speedup"]
