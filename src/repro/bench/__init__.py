"""Google-Benchmark-style reporting (paper namespace ``FIDESlib::bench``).

The paper uses Google Benchmark for its performance harness; this package
provides the equivalent reporting layer for the Python reproduction: result
tables with named rows/columns, speedup computation against a baseline
column, and text/markdown/CSV rendering used by the ``benchmarks/``
directory and EXPERIMENTS.md.
"""

from repro.bench.reporting import BenchmarkTable, format_seconds, speedup

__all__ = ["BenchmarkTable", "format_seconds", "speedup"]
