"""Realistic encrypted workloads built on the high-level :mod:`repro.api`.

Every workload is written once against the
:class:`~repro.api.backend.EvaluationBackend` seam: it verifies
functionally on a :class:`~repro.api.backend.FunctionalBackend` and costs
on a :class:`~repro.api.backend.CostModelBackend` at paper-scale
parameters.

* :mod:`repro.apps.dataset` -- synthetic loan-eligibility data standing in
  for the proprietary 45,000-sample dataset of the paper's LR experiment.
* :mod:`repro.apps.logistic_regression` -- encrypted mini-batch logistic
  regression training (Table VII's workload) plus a plaintext reference.
* :mod:`repro.apps.linear_algebra` -- encrypted dot products, rotation
  sums and matrix-vector products using hoisted rotations.
* :mod:`repro.apps.stats` -- encrypted descriptive statistics.
"""

from repro.apps.dataset import make_loan_dataset
from repro.apps.logistic_regression import (
    EncryptedLogisticRegression,
    PlaintextLogisticRegression,
)
from repro.apps.linear_algebra import EncryptedLinearAlgebra
from repro.apps.stats import EncryptedStatistics

__all__ = [
    "make_loan_dataset",
    "EncryptedLogisticRegression",
    "PlaintextLogisticRegression",
    "EncryptedLinearAlgebra",
    "EncryptedStatistics",
]
