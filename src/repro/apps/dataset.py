"""Synthetic loan-eligibility dataset.

The paper trains logistic regression on a 45,000-sample loan-eligibility
dataset with 25 features (padded to 32), packing 1,024 samples per
ciphertext.  That dataset is not public, so this module generates a
synthetic stand-in with the same shape: a linearly separable (plus noise)
binary classification problem whose features are normalised to the range
CKKS handles comfortably.  DESIGN.md documents the substitution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LoanDataset:
    """A synthetic loan-eligibility classification dataset."""

    features: np.ndarray  # shape (samples, padded_features), values in [-1, 1]
    labels: np.ndarray    # shape (samples,), values in {0, 1}
    true_weights: np.ndarray
    feature_count: int
    padded_feature_count: int

    @property
    def sample_count(self) -> int:
        """Number of samples."""
        return self.features.shape[0]

    def batches(self, batch_size: int):
        """Yield (features, labels) mini-batches of ``batch_size`` samples."""
        for start in range(0, self.sample_count - batch_size + 1, batch_size):
            stop = start + batch_size
            yield self.features[start:stop], self.labels[start:stop]


def _next_power_of_two(value: int) -> int:
    return 1 << max(0, (value - 1).bit_length())


def make_loan_dataset(
    samples: int = 45_000,
    features: int = 25,
    *,
    pad_to_power_of_two: bool = True,
    noise: float = 0.3,
    seed: int | None = 0,
) -> LoanDataset:
    """Generate a synthetic loan-eligibility dataset.

    Parameters
    ----------
    samples, features:
        Dataset shape; the paper uses 45,000 samples with 25 features.
    pad_to_power_of_two:
        Pad the feature dimension with zeros to the next power of two
        (the paper pads 25 features to 32 to align rotations).
    noise:
        Standard deviation of the label noise added before thresholding;
        larger values make the problem harder.
    seed:
        Seed for reproducibility.
    """
    if samples < 1 or features < 1:
        raise ValueError("samples and features must be positive")
    rng = np.random.default_rng(seed)
    raw = rng.uniform(-1.0, 1.0, size=(samples, features))
    true_weights = rng.normal(0.0, 1.0, size=features)
    logits = raw @ true_weights + rng.normal(0.0, noise, size=samples)
    labels = (logits > 0).astype(np.float64)
    padded = features
    if pad_to_power_of_two:
        padded = _next_power_of_two(features)
    data = np.zeros((samples, padded))
    data[:, :features] = raw
    return LoanDataset(
        features=data,
        labels=labels,
        true_weights=true_weights,
        feature_count=features,
        padded_feature_count=padded,
    )


__all__ = ["LoanDataset", "make_loan_dataset"]
