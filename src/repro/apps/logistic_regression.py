"""Encrypted logistic-regression training (the Table VII workload).

Follows the mini-batch gradient-descent approach of Han et al. [51] that
the paper benchmarks: features and labels are encrypted column-wise
(one ciphertext per feature column, samples in the slots), the model is a
set of encrypted per-feature weight ciphertexts, and each iteration
evaluates the polynomial-approximated sigmoid and the gradient entirely
under encryption.

The model is written against the backend seam of :mod:`repro.api`: on a
:class:`~repro.api.backend.FunctionalBackend` it trains for real at
reduced problem sizes, while the *same* training step replayed on a
:class:`~repro.api.backend.CostModelBackend` reproduces the paper-scale
GPU cost (see :class:`repro.perf.workloads.LogisticRegressionWorkload`
for the closed-form counterpart).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api.backend import as_backend
from repro.api.vector import CipherVector, as_vector
from repro.apps.dataset import _next_power_of_two
from repro.apps.linear_algebra import EncryptedLinearAlgebra

#: Degree-3 least-squares approximation of the sigmoid on [-6, 6]
#: (the approximation used by Han et al. for encrypted LR training).
SIGMOID_COEFFS = (0.5, 0.197, 0.0, -0.004)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Exact sigmoid (plaintext reference)."""
    return 1.0 / (1.0 + np.exp(-x))


def sigmoid_poly(x: np.ndarray) -> np.ndarray:
    """The degree-3 polynomial sigmoid approximation used under encryption."""
    c0, c1, c2, c3 = SIGMOID_COEFFS
    return c0 + c1 * x + c2 * x**2 + c3 * x**3


@dataclass
class PlaintextLogisticRegression:
    """Plaintext mini-batch gradient descent (reference for the tests)."""

    learning_rate: float = 1.0
    use_polynomial_sigmoid: bool = True
    weights: np.ndarray | None = None

    def fit_batch(self, features: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Run one gradient-descent step on a mini-batch; returns weights."""
        samples, dim = features.shape
        if self.weights is None:
            self.weights = np.zeros(dim)
        logits = features @ self.weights
        activation = sigmoid_poly(logits) if self.use_polynomial_sigmoid else sigmoid(logits)
        gradient = features.T @ (activation - labels) / samples
        self.weights = self.weights - self.learning_rate * gradient
        return self.weights

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Return class predictions for ``features``."""
        if self.weights is None:
            raise RuntimeError("model has not been trained")
        return (features @ self.weights > 0).astype(np.float64)

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on the given data."""
        return float(np.mean(self.predict(features) == labels))


@dataclass
class EncryptedLogisticRegression:
    """Mini-batch logistic regression trained on encrypted data.

    Parameters
    ----------
    backend:
        An :class:`~repro.api.backend.EvaluationBackend` (or a
        :class:`~repro.api.session.CKKSSession`).  The backend needs
        rotation keys for the powers of two below the batch size
        (rotation sums over the samples).
    feature_count:
        Number of (padded) features; one ciphertext per feature column.
    learning_rate:
        Gradient-descent step size.
    """

    backend: object
    feature_count: int
    learning_rate: float = 1.0
    weights: list[CipherVector] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.backend = as_backend(self.backend)
        self._linalg = EncryptedLinearAlgebra(self.backend)

    # ------------------------------------------------------------------

    @staticmethod
    def required_rotations(batch_size: int) -> list[int]:
        """Rotation keys needed to train with mini-batches of ``batch_size``."""
        return EncryptedLinearAlgebra.rotation_steps_for_sum(batch_size)

    def _encrypt(self, values) -> CipherVector:
        return CipherVector(self.backend, self.backend.encrypt(values))

    def encrypt_batch(self, features: np.ndarray, labels: np.ndarray
                      ) -> tuple[list[CipherVector], CipherVector]:
        """Encrypt a mini-batch column-wise: one ciphertext per feature."""
        samples, dim = features.shape
        if dim != self.feature_count:
            raise ValueError("feature dimension mismatch")
        columns = [self._encrypt(features[:, j]) for j in range(dim)]
        label_ct = self._encrypt(labels)
        return columns, label_ct

    def initialise_weights(self) -> None:
        """Encrypt an all-zero weight vector (one broadcast ciphertext per feature)."""
        self.weights = [self._encrypt(np.zeros(1)) for _ in range(self.feature_count)]

    # ------------------------------------------------------------------

    def _logits(self, columns: list[CipherVector]) -> CipherVector:
        terms = [column * weight for column, weight in zip(columns, self.weights)]
        logits = terms[0]
        for term in terms[1:]:
            logits = logits + term
        return logits

    def _sigmoid(self, logits: CipherVector) -> CipherVector:
        c0, c1, _, c3 = SIGMOID_COEFFS
        linear = logits * c1
        cubed = (logits ** 2) * logits
        return linear + cubed * c3 + c0

    def train_batch(self, columns: list[CipherVector], label_ct: CipherVector,
                    batch_size: int) -> None:
        """Run one encrypted gradient-descent step on an encrypted mini-batch."""
        if not self.weights:
            self.initialise_weights()
        logits = self._logits(columns)
        activation = self._sigmoid(logits)
        residual = activation - label_ct
        scale = -self.learning_rate / batch_size
        new_weights = []
        for column, weight in zip(columns, self.weights):
            correlation = residual * column
            gradient = self._linalg.sum_slots(correlation, batch_size)
            new_weights.append(weight + gradient * scale)
        self.weights = new_weights

    def decrypt_weights(self, decryptor) -> np.ndarray:
        """Decrypt the current model (client-side operation).

        ``decryptor`` may be a :class:`~repro.ckks.encryption.Decryptor`
        or a :class:`~repro.api.session.CKKSSession`.
        """
        if hasattr(decryptor, "decrypt_values"):
            values = [decryptor.decrypt_values(w.handle, 1) for w in self.weights]
        else:
            values = [decryptor.decrypt(w, 1) for w in self.weights]
        return np.array([float(v[0].real) for v in values])


@dataclass
class EncryptedLRScorer:
    """Encrypted inference with a plaintext model (the serving workload).

    The scoring counterpart of :class:`EncryptedLogisticRegression`: the
    server holds trained weights in the clear and scores *encrypted*
    feature vectors -- each request one ciphertext with the features in
    its leading slots.  The score ``sigmoid_poly(w·x)`` lands in slot 0.

    The circuit is written once against the operator surface shared by
    :class:`~repro.api.vector.CipherVector` and
    :class:`~repro.api.batch.CipherBatch`, so :meth:`score` (one request,
    sequential kernels) and :meth:`score_batch` (a fused inference batch,
    one ``(B·L, N)`` kernel stream) issue the identical op sequence --
    which is what makes the two paths bit-identical member by member.
    Every step keeps operand levels aligned explicitly (batched operands
    never adjust implicitly): the cubic sigmoid term is factored as
    ``c3·x·(x² + c1/c3)``, whose two ciphertext factors sit at the same
    level by construction.

    Requires rotation keys for the powers of two below the padded feature
    count (:meth:`required_rotations`).  Uses 3 multiplicative levels.
    """

    backend: object
    weights: np.ndarray

    def __post_init__(self) -> None:
        self.backend = as_backend(self.backend)
        self.weights = np.asarray(self.weights, dtype=np.float64)
        if self.weights.ndim != 1 or self.weights.size == 0:
            raise ValueError("weights must be a non-empty 1-D vector")
        padded = _next_power_of_two(self.weights.size)
        self._padded_count = padded
        self._padded_weights = np.zeros(padded)
        self._padded_weights[: self.weights.size] = self.weights

    @property
    def feature_count(self) -> int:
        """Number of model features (unpadded)."""
        return int(self.weights.size)

    @staticmethod
    def required_rotations(feature_count: int) -> list[int]:
        """Rotation keys needed to score ``feature_count`` features."""
        return EncryptedLinearAlgebra.rotation_steps_for_sum(
            _next_power_of_two(feature_count)
        )

    # ------------------------------------------------------------------

    def _score(self, x):
        """The shared circuit: works on a CipherVector or a CipherBatch."""
        c0, c1, _, c3 = SIGMOID_COEFFS
        masked = x * self._padded_weights          # PtMult: w_j * x_j per slot
        logits = masked
        for step in EncryptedLinearAlgebra.rotation_steps_for_sum(self._padded_count):
            logits = logits + (logits << step)     # rotate-and-add: slot0 = w.x
        squared = logits.square()                  # z^2          (level l-1)
        shifted = squared + (c1 / c3)              # z^2 + c1/c3  (level l-1)
        scaled = logits * c3                       # c3 z         (level l-1)
        cubic = shifted * scaled                   # c1 z + c3 z^3 (level l-2)
        return cubic + c0

    def score(self, vector: CipherVector) -> CipherVector:
        """Score one encrypted feature vector (sequential evaluator path)."""
        return self._score(as_vector(self.backend, vector))

    def score_batch(self, batch):
        """Score a fused inference batch: one kernel stream for all members.

        ``batch`` is a :class:`~repro.api.batch.CipherBatch`; the returned
        batch's members are bit-identical to :meth:`score` of each member.
        """
        return self._score(batch)

    def program(self):
        """This scorer as a serving-plane :class:`~repro.serve.OpProgram`.

        The program key includes the exact model bytes, so two servers (or
        two models on one server) never fuse each other's requests.
        """
        from repro.serve.request import OpProgram

        return OpProgram(
            f"lr-score[d={self.feature_count}]",
            self._score,
            key=("lr-score", self.feature_count, self.weights.tobytes()),
        )


__all__ = [
    "PlaintextLogisticRegression",
    "EncryptedLogisticRegression",
    "EncryptedLRScorer",
    "SIGMOID_COEFFS",
    "sigmoid",
    "sigmoid_poly",
]
