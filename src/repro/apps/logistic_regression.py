"""Encrypted logistic-regression training (the Table VII workload).

Follows the mini-batch gradient-descent approach of Han et al. [51] that
the paper benchmarks: features and labels are encrypted column-wise
(one ciphertext per feature column, samples in the slots), the model is a
set of encrypted per-feature weight ciphertexts, and each iteration
evaluates the polynomial-approximated sigmoid and the gradient entirely
under encryption.  The functional backend runs reduced problem sizes; the
paper-scale cost is reproduced by
:class:`repro.perf.workloads.LogisticRegressionWorkload`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.linear_algebra import EncryptedLinearAlgebra
from repro.ckks.ciphertext import Ciphertext
from repro.ckks.context import Context
from repro.ckks.encryption import Decryptor, Encryptor
from repro.ckks.evaluator import Evaluator

#: Degree-3 least-squares approximation of the sigmoid on [-6, 6]
#: (the approximation used by Han et al. for encrypted LR training).
SIGMOID_COEFFS = (0.5, 0.197, 0.0, -0.004)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Exact sigmoid (plaintext reference)."""
    return 1.0 / (1.0 + np.exp(-x))


def sigmoid_poly(x: np.ndarray) -> np.ndarray:
    """The degree-3 polynomial sigmoid approximation used under encryption."""
    c0, c1, c2, c3 = SIGMOID_COEFFS
    return c0 + c1 * x + c2 * x**2 + c3 * x**3


@dataclass
class PlaintextLogisticRegression:
    """Plaintext mini-batch gradient descent (reference for the tests)."""

    learning_rate: float = 1.0
    use_polynomial_sigmoid: bool = True
    weights: np.ndarray | None = None

    def fit_batch(self, features: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Run one gradient-descent step on a mini-batch; returns weights."""
        samples, dim = features.shape
        if self.weights is None:
            self.weights = np.zeros(dim)
        logits = features @ self.weights
        activation = sigmoid_poly(logits) if self.use_polynomial_sigmoid else sigmoid(logits)
        gradient = features.T @ (activation - labels) / samples
        self.weights = self.weights - self.learning_rate * gradient
        return self.weights

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Return class predictions for ``features``."""
        if self.weights is None:
            raise RuntimeError("model has not been trained")
        return (features @ self.weights > 0).astype(np.float64)

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on the given data."""
        return float(np.mean(self.predict(features) == labels))


@dataclass
class EncryptedLogisticRegression:
    """Mini-batch logistic regression trained on encrypted data.

    Parameters
    ----------
    context, evaluator, encryptor:
        CKKS machinery; the evaluator needs rotation keys for the powers
        of two below the batch size (rotation sums over the samples).
    feature_count:
        Number of (padded) features; one ciphertext per feature column.
    learning_rate:
        Gradient-descent step size.
    """

    context: Context
    evaluator: Evaluator
    encryptor: Encryptor
    feature_count: int
    learning_rate: float = 1.0
    weight_cts: list[Ciphertext] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._linalg = EncryptedLinearAlgebra(self.context, self.evaluator)

    # ------------------------------------------------------------------

    @staticmethod
    def required_rotations(batch_size: int) -> list[int]:
        """Rotation keys needed to train with mini-batches of ``batch_size``."""
        return EncryptedLinearAlgebra.rotation_steps_for_sum(batch_size)

    def encrypt_batch(self, features: np.ndarray, labels: np.ndarray
                      ) -> tuple[list[Ciphertext], Ciphertext]:
        """Encrypt a mini-batch column-wise: one ciphertext per feature."""
        samples, dim = features.shape
        if dim != self.feature_count:
            raise ValueError("feature dimension mismatch")
        columns = [self.encryptor.encrypt_values(features[:, j]) for j in range(dim)]
        label_ct = self.encryptor.encrypt_values(labels)
        return columns, label_ct

    def initialise_weights(self) -> None:
        """Encrypt an all-zero weight vector (one broadcast ciphertext per feature)."""
        self.weight_cts = [
            self.encryptor.encrypt_values(np.zeros(1)) for _ in range(self.feature_count)
        ]

    # ------------------------------------------------------------------

    def _logits(self, columns: list[Ciphertext]) -> Ciphertext:
        terms = [
            self.evaluator.multiply(column, weight)
            for column, weight in zip(columns, self.weight_cts)
        ]
        logits = terms[0]
        for term in terms[1:]:
            logits = self.evaluator.add(logits, term)
        return logits

    def _sigmoid(self, logits: Ciphertext) -> Ciphertext:
        c0, c1, _, c3 = SIGMOID_COEFFS
        linear = self.evaluator.multiply_scalar(logits, c1)
        squared = self.evaluator.square(logits)
        cubed = self.evaluator.multiply(squared, logits)
        cubic = self.evaluator.multiply_scalar(cubed, c3)
        result = self.evaluator.add(linear, cubic)
        return self.evaluator.add_scalar(result, c0)

    def train_batch(self, columns: list[Ciphertext], label_ct: Ciphertext,
                    batch_size: int) -> None:
        """Run one encrypted gradient-descent step on an encrypted mini-batch."""
        if not self.weight_cts:
            self.initialise_weights()
        logits = self._logits(columns)
        activation = self._sigmoid(logits)
        residual = self.evaluator.sub(activation, label_ct)
        scale = -self.learning_rate / batch_size
        new_weights = []
        for column, weight in zip(columns, self.weight_cts):
            correlation = self.evaluator.multiply(residual, column)
            gradient = self._linalg.sum_slots(correlation, batch_size)
            update = self.evaluator.multiply_scalar(gradient, scale)
            new_weights.append(self.evaluator.add(weight, update))
        self.weight_cts = new_weights

    def decrypt_weights(self, decryptor: Decryptor) -> np.ndarray:
        """Decrypt the current model (client-side operation)."""
        return np.array(
            [float(decryptor.decrypt_values(w, 1)[0].real) for w in self.weight_cts]
        )


__all__ = [
    "PlaintextLogisticRegression",
    "EncryptedLogisticRegression",
    "SIGMOID_COEFFS",
    "sigmoid",
    "sigmoid_poly",
]
