"""Encrypted descriptive statistics.

A small privacy-preserving-analytics workload: mean, variance and
covariance of encrypted samples, computed with rotation sums and
scalar/plaintext arithmetic only.  Used as one of the runnable examples
and as an integration test of the rotation and rescaling machinery.
"""

from __future__ import annotations

from repro.apps.linear_algebra import EncryptedLinearAlgebra
from repro.ckks.ciphertext import Ciphertext
from repro.ckks.context import Context
from repro.ckks.evaluator import Evaluator


class EncryptedStatistics:
    """Mean / variance / covariance over encrypted sample vectors."""

    def __init__(self, context: Context, evaluator: Evaluator) -> None:
        self.context = context
        self.evaluator = evaluator
        self.linalg = EncryptedLinearAlgebra(context, evaluator)

    def mean(self, ct: Ciphertext, count: int) -> Ciphertext:
        """Mean of the first ``count`` slots, broadcast to every slot."""
        total = self.linalg.sum_slots(ct, count)
        return self.evaluator.multiply_scalar(total, 1.0 / count)

    def variance(self, ct: Ciphertext, count: int) -> Ciphertext:
        """Population variance of the first ``count`` slots (broadcast)."""
        mean = self.mean(ct, count)
        mean_of_squares = self.evaluator.multiply_scalar(
            self.linalg.sum_slots(self.evaluator.square(ct), count), 1.0 / count
        )
        mean_squared = self.evaluator.square(mean)
        return self.evaluator.sub(mean_of_squares, mean_squared)

    def covariance(self, ct_a: Ciphertext, ct_b: Ciphertext, count: int) -> Ciphertext:
        """Population covariance of two encrypted sample vectors."""
        mean_a = self.mean(ct_a, count)
        mean_b = self.mean(ct_b, count)
        mean_product = self.evaluator.multiply_scalar(
            self.linalg.sum_slots(self.evaluator.multiply(ct_a, ct_b), count),
            1.0 / count,
        )
        product_of_means = self.evaluator.multiply(mean_a, mean_b)
        return self.evaluator.sub(mean_product, product_of_means)


__all__ = ["EncryptedStatistics"]
