"""Encrypted descriptive statistics.

A small privacy-preserving-analytics workload: mean, variance and
covariance of encrypted samples, computed with rotation sums and
scalar/plaintext arithmetic only.  Written against the backend seam of
:mod:`repro.api`, so the same code verifies functionally and costs on the
GPU model.  Used as one of the runnable examples and as an integration
test of the rotation and rescaling machinery.
"""

from __future__ import annotations

from repro.api.backend import as_backend
from repro.api.vector import CipherVector, as_vector
from repro.apps.linear_algebra import EncryptedLinearAlgebra


class EncryptedStatistics:
    """Mean / variance / covariance over encrypted sample vectors."""

    def __init__(self, backend) -> None:
        self.backend = as_backend(backend)
        self.linalg = EncryptedLinearAlgebra(self.backend)

    def mean(self, ct, count: int) -> CipherVector:
        """Mean of the first ``count`` slots, broadcast to every slot."""
        return self.linalg.sum_slots(ct, count) * (1.0 / count)

    def variance(self, ct, count: int) -> CipherVector:
        """Population variance of the first ``count`` slots (broadcast)."""
        vector = as_vector(self.backend, ct)
        mean = self.mean(vector, count)
        mean_of_squares = self.linalg.sum_slots(vector ** 2, count) * (1.0 / count)
        return mean_of_squares - mean ** 2

    def covariance(self, ct_a, ct_b, count: int) -> CipherVector:
        """Population covariance of two encrypted sample vectors."""
        a = as_vector(self.backend, ct_a)
        b = as_vector(self.backend, ct_b)
        mean_product = self.linalg.sum_slots(a * b, count) * (1.0 / count)
        return mean_product - self.mean(a, count) * self.mean(b, count)


__all__ = ["EncryptedStatistics"]
