"""Encrypted linear-algebra building blocks on the backend seam.

These helpers exercise the rotation machinery (including hoisted
rotations) on realistic patterns: slot sums, inner products between
ciphertexts, and small matrix-vector products evaluated with the diagonal
method.  They are written against the
:class:`~repro.api.backend.EvaluationBackend` protocol, so the same code
runs functionally (real ciphertexts) or symbolically (GPU cost model).
The logistic-regression and statistics apps are built on top of them.
"""

from __future__ import annotations

import numpy as np

from repro.api.backend import as_backend
from repro.api.vector import CipherVector, as_vector


class EncryptedLinearAlgebra:
    """Rotation-based linear algebra over encrypted vectors.

    ``backend`` may be an :class:`~repro.api.backend.EvaluationBackend`
    or anything exposing one through a ``.backend`` attribute (e.g. a
    :class:`~repro.api.session.CKKSSession`).
    """

    def __init__(self, backend) -> None:
        self.backend = as_backend(backend)

    @staticmethod
    def rotation_steps_for_sum(length: int) -> list[int]:
        """Rotation keys needed by :meth:`sum_slots` over ``length`` slots."""
        if length < 1 or length & (length - 1):
            raise ValueError("length must be a power of two")
        return [1 << i for i in range(int(np.log2(length)))] if length > 1 else []

    def sum_slots(self, ct, length: int) -> CipherVector:
        """Return a ciphertext whose slots all contain ``Σ_{i<length} slot_i``.

        Uses the rotate-and-add tree, so it needs rotation keys for the
        powers of two below ``length``.
        """
        result = as_vector(self.backend, ct)
        for step in self.rotation_steps_for_sum(length):
            result = result + (result << step)
        return result

    def inner_product(self, ct_a, ct_b, length: int) -> CipherVector:
        """Inner product of two encrypted vectors, broadcast to every slot."""
        product = as_vector(self.backend, ct_a) * as_vector(self.backend, ct_b)
        return self.sum_slots(product, length)

    def weighted_sum(self, cts, weights) -> CipherVector:
        """Return ``Σ_i weights[i] * cts[i]`` (scalar multiplications + adds)."""
        if len(cts) != len(weights) or not cts:
            raise ValueError("need equally many ciphertexts and weights")
        result = as_vector(self.backend, cts[0]) * float(weights[0])
        for ct, weight in zip(cts[1:], weights[1:]):
            result = result + as_vector(self.backend, ct) * float(weight)
        return result

    def matrix_vector(self, matrix: np.ndarray, ct) -> CipherVector:
        """Multiply an encrypted vector by a small plaintext square matrix.

        Uses the diagonal method: ``M·v = Σ_k diag_k(M) ⊙ rot_k(v)``, with
        all rotations produced by one hoisted decomposition (§III-F.6) and
        the accumulation by the dot-product fusion of §III-F.5.  The
        matrix dimension must divide the slot count.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        dim = matrix.shape[0]
        if matrix.shape != (dim, dim):
            raise ValueError("matrix must be square")
        vector = as_vector(self.backend, ct)
        steps = [k for k in range(1, dim)]
        rotations = vector.rotate_many(steps) if steps else {}
        rotations[0] = vector
        handles, diagonal_rows = [], []
        indices = np.arange(dim)
        repeats = vector.slots // dim
        for k in range(dim):
            diagonal = matrix[indices, (indices + k) % dim]
            if not np.any(np.abs(diagonal) > 1e-12):
                continue
            handles.append(rotations[k].handle)
            diagonal_rows.append(np.tile(diagonal, repeats))
        if not handles:
            raise ValueError("matrix is identically zero")
        return CipherVector(
            self.backend, self.backend.dot_product_plain(handles, diagonal_rows)
        )


__all__ = ["EncryptedLinearAlgebra"]
