"""Encrypted linear-algebra building blocks.

These helpers exercise the rotation machinery (including hoisted
rotations) on realistic patterns: slot sums, inner products between
ciphertexts, and small matrix-vector products evaluated with the diagonal
method.  The logistic-regression and statistics apps are built on top of
them.
"""

from __future__ import annotations

import numpy as np

from repro.ckks.ciphertext import Ciphertext
from repro.ckks.context import Context
from repro.ckks.evaluator import Evaluator


class EncryptedLinearAlgebra:
    """Rotation-based linear algebra over encrypted vectors."""

    def __init__(self, context: Context, evaluator: Evaluator) -> None:
        self.context = context
        self.evaluator = evaluator

    @staticmethod
    def rotation_steps_for_sum(length: int) -> list[int]:
        """Rotation keys needed by :meth:`sum_slots` over ``length`` slots."""
        if length < 1 or length & (length - 1):
            raise ValueError("length must be a power of two")
        return [1 << i for i in range(int(np.log2(length)))] if length > 1 else []

    def sum_slots(self, ct: Ciphertext, length: int) -> Ciphertext:
        """Return a ciphertext whose slots all contain ``Σ_{i<length} slot_i``.

        Uses the rotate-and-add tree, so it needs rotation keys for the
        powers of two below ``length``.
        """
        result = ct
        for step in self.rotation_steps_for_sum(length):
            rotated = self.evaluator.rotate(result, step)
            result = self.evaluator.add(result, rotated)
        return result

    def inner_product(self, ct_a: Ciphertext, ct_b: Ciphertext, length: int) -> Ciphertext:
        """Inner product of two encrypted vectors, broadcast to every slot."""
        product = self.evaluator.multiply(ct_a, ct_b)
        return self.sum_slots(product, length)

    def weighted_sum(self, cts: list[Ciphertext], weights: list[float]) -> Ciphertext:
        """Return ``Σ_i weights[i] * cts[i]`` (scalar multiplications + adds)."""
        if len(cts) != len(weights) or not cts:
            raise ValueError("need equally many ciphertexts and weights")
        result = self.evaluator.multiply_scalar(cts[0], float(weights[0]))
        for ct, weight in zip(cts[1:], weights[1:]):
            term = self.evaluator.multiply_scalar(ct, float(weight))
            result = self.evaluator.add(result, term)
        return result

    def matrix_vector(self, matrix: np.ndarray, ct: Ciphertext) -> Ciphertext:
        """Multiply an encrypted vector by a small plaintext square matrix.

        Uses the diagonal method: ``M·v = Σ_k diag_k(M) ⊙ rot_k(v)``, with
        all rotations produced by one hoisted decomposition (§III-F.6).
        The matrix dimension must divide the slot count.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        dim = matrix.shape[0]
        if matrix.shape != (dim, dim):
            raise ValueError("matrix must be square")
        steps = [k for k in range(1, dim)]
        rotations = self.evaluator.hoisted_rotations(ct, steps) if steps else {}
        rotations[0] = ct
        result = None
        indices = np.arange(dim)
        for k in range(dim):
            diagonal = matrix[indices, (indices + k) % dim]
            if not np.any(np.abs(diagonal) > 1e-12):
                continue
            repeats = ct.slots // dim
            diag_slots = np.tile(diagonal, repeats)
            pt = self.evaluator.encode_for(rotations[k], diag_slots)
            term = self.evaluator.multiply_plain(rotations[k], pt, rescale=False)
            result = term if result is None else self.evaluator.add(result, term)
        if result is None:
            raise ValueError("matrix is identically zero")
        return self.evaluator.rescale(result)


__all__ = ["EncryptedLinearAlgebra"]
