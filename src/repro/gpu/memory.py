"""Device-memory footprint helpers for the execution model.

These helpers answer the capacity questions the paper raises: ciphertext
and key-switching-key sizes (§III-F.1 quotes ~120 MB for a ciphertext plus
switching key; Figure 8 discusses key sizes from 2.3 MB to 360 MB) and
whether a working set fits the L2 cache of a given platform.
"""

from __future__ import annotations

from repro.ckks.params import CKKSParameters
from repro.core.memory import (
    STRATEGY_ARRAY_PER_LIMB,
    STRATEGY_FLATTENED,
    MemoryPool,
)
from repro.gpu.platforms import ComputePlatform

ELEMENT_BYTES = 8


def limb_bytes(params: CKKSParameters) -> int:
    """Bytes of a single limb (one residue polynomial)."""
    return params.ring_degree * ELEMENT_BYTES


def ciphertext_bytes(params: CKKSParameters, limbs: int | None = None) -> int:
    """Bytes of a two-component ciphertext with ``limbs`` limbs."""
    if limbs is None:
        limbs = params.limb_count
    return 2 * limbs * limb_bytes(params)


def plaintext_bytes(params: CKKSParameters, limbs: int | None = None) -> int:
    """Bytes of an encoded plaintext with ``limbs`` limbs."""
    if limbs is None:
        limbs = params.limb_count
    return limbs * limb_bytes(params)


def key_switching_key_bytes(params: CKKSParameters) -> int:
    """Bytes of one hybrid key-switching key (dnum digit pairs, extended basis)."""
    extended_limbs = params.limb_count + params.special_limb_count
    return 2 * params.dnum * extended_limbs * limb_bytes(params)


def hmult_working_set_bytes(params: CKKSParameters, limbs: int | None = None) -> int:
    """Working set of HMult: both ciphertexts plus the relinearisation key."""
    return 2 * ciphertext_bytes(params, limbs) + key_switching_key_bytes(params)


def fits_in_shared_cache(platform: ComputePlatform, nbytes: float) -> bool:
    """True when ``nbytes`` fits in the platform's last-level cache."""
    return nbytes <= platform.shared_cache_bytes


def measure_allocation_strategies(
    params: CKKSParameters,
    limbs: int | None = None,
    *,
    granularity: int = 256,
) -> dict:
    """Measure the §III-D allocation-strategy trade-off with real pools.

    Allocates one polynomial's worth of device memory both ways --
    ``limbs`` separate per-limb buffers (stack-of-arrays) versus a single
    flattened ``(limbs, N)`` buffer -- into fresh :class:`MemoryPool`
    instances and reports the resulting footprints, allocation counts and
    exact internal fragmentation, so the comparison is measured rather
    than modeled.
    """
    if limbs is None:
        limbs = params.limb_count
    per_limb = limb_bytes(params)

    stack_pool = MemoryPool(granularity=granularity)
    for index in range(limbs):
        stack_pool.allocate(
            per_limb, tag=f"limb[{index}]", strategy=STRATEGY_ARRAY_PER_LIMB
        )
    flat_pool = MemoryPool(granularity=granularity)
    flat_pool.allocate(
        limbs * per_limb, tag="limb-stack", strategy=STRATEGY_FLATTENED
    )

    def report(pool: MemoryPool) -> dict:
        return {
            "bytes_in_use": pool.bytes_in_use,
            "requested_bytes": pool.requested_bytes,
            "allocations": pool.allocation_count,
            "internal_fragmentation": pool.internal_fragmentation(),
        }

    return {
        STRATEGY_ARRAY_PER_LIMB: report(stack_pool),
        STRATEGY_FLATTENED: report(flat_pool),
        "limbs": limbs,
        "limb_bytes": per_limb,
        "granularity": granularity,
    }


__all__ = [
    "ELEMENT_BYTES",
    "limb_bytes",
    "ciphertext_bytes",
    "plaintext_bytes",
    "key_switching_key_bytes",
    "hmult_working_set_bytes",
    "fits_in_shared_cache",
    "measure_allocation_strategies",
]
