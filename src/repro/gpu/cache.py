"""Last-level-cache reuse model.

FHE kernels are memory-bound; the paper's central performance argument
(§III-F.1) is that processing a *subset* of a ciphertext's limbs per
kernel keeps the working set inside the GPU's L2 cache, so consecutive
kernels hit in L2 instead of going to DRAM.  This module captures that
effect: given a kernel's working-set size and how many times each byte is
touched, it estimates the fraction of traffic served from L2 and the
resulting effective bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.platforms import ComputePlatform


@dataclass(frozen=True)
class CacheModel:
    """Simple capacity-based last-level-cache model.

    The model assumes streaming access: the first touch of every byte
    misses; subsequent touches hit if the working set fits in the cache,
    and degrade linearly as the working set grows up to ``overflow_factor``
    times the capacity (approximating partial retention).
    """

    platform: ComputePlatform
    overflow_factor: float = 4.0

    def hit_fraction(self, working_set_bytes: float, reuse: float) -> float:
        """Fraction of accesses served by the cache.

        Parameters
        ----------
        working_set_bytes:
            Bytes the kernel (or kernel group) touches repeatedly.
        reuse:
            Average number of times each byte is accessed (>= 1).
        """
        if reuse <= 1.0 or working_set_bytes <= 0:
            return 0.0
        capacity = self.platform.shared_cache_bytes
        if working_set_bytes <= capacity:
            retention = 1.0
        elif working_set_bytes >= capacity * self.overflow_factor:
            retention = 0.0
        else:
            span = capacity * (self.overflow_factor - 1.0)
            retention = 1.0 - (working_set_bytes - capacity) / span
        return retention * (reuse - 1.0) / reuse

    def effective_bandwidth(self, working_set_bytes: float, reuse: float) -> float:
        """Blended bandwidth (bytes/s) given the cache hit fraction."""
        hit = self.hit_fraction(working_set_bytes, reuse)
        dram = self.platform.bandwidth_bytes_per_s
        cache = dram * self.platform.cache_bandwidth_multiplier
        # Time-weighted harmonic blend of cache and DRAM service rates.
        miss = 1.0 - hit
        return 1.0 / (miss / dram + hit / cache)


__all__ = ["CacheModel"]
