"""A simulated GPU device: executes kernel lists and reports timings.

``GPUDevice`` combines the roofline kernel cost model, the L2 cache model
and the stream scheduler into a single entry point used by the
:mod:`repro.perf` execution plans.  It also tracks device-memory
allocations against the platform's DRAM capacity so key-switching-key
residency questions (Figure 8's discussion) can be answered.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.memory import MemoryPool
from repro.gpu.kernel import Kernel, KernelCostModel, KernelTiming
from repro.gpu.platforms import ComputePlatform
from repro.gpu.stream import ScheduleResult, StreamScheduler


@dataclass
class ExecutionResult:
    """Timing summary of one operation executed on the device."""

    platform: str
    total_time: float
    execution_time: float
    launch_time: float
    kernel_count: int
    bytes_moved: float
    int_ops: float
    compute_bound_kernels: int
    memory_bound_kernels: int

    @property
    def total_time_us(self) -> float:
        """Total time in microseconds."""
        return self.total_time * 1e6

    @property
    def total_time_ms(self) -> float:
        """Total time in milliseconds."""
        return self.total_time * 1e3


class GPUDevice:
    """Executes kernel sequences under the platform's execution model."""

    def __init__(
        self,
        platform: ComputePlatform,
        *,
        streams: int = 4,
        compute_efficiency: float = 0.5,
        bandwidth_efficiency: float = 0.85,
    ) -> None:
        self.platform = platform
        self.cost_model = KernelCostModel(
            platform,
            compute_efficiency=compute_efficiency,
            bandwidth_efficiency=bandwidth_efficiency,
        )
        self.scheduler = StreamScheduler(platform, streams=streams)
        self.memory = MemoryPool(capacity_bytes=platform.dram_gb * (1 << 30))

    def execute(self, kernels: list[Kernel]) -> ExecutionResult:
        """Execute a kernel list and return the timing summary."""
        timings: list[KernelTiming] = self.cost_model.time_kernels(kernels)
        schedule: ScheduleResult = self.scheduler.schedule(timings)
        return ExecutionResult(
            platform=self.platform.name,
            total_time=schedule.makespan,
            execution_time=schedule.execution_time,
            launch_time=schedule.launch_time,
            kernel_count=schedule.kernel_count,
            bytes_moved=sum(k.bytes_moved for k in kernels),
            int_ops=sum(k.int_ops for k in kernels),
            compute_bound_kernels=sum(1 for t in timings if t.bound == "compute"),
            memory_bound_kernels=sum(1 for t in timings if t.bound == "memory"),
        )

    def allocate(self, nbytes: int, tag: str = "") -> int:
        """Allocate device memory (raises when DRAM capacity is exceeded)."""
        return self.memory.allocate(nbytes, tag=tag)

    def free(self, handle: int) -> None:
        """Free a device allocation."""
        self.memory.free(handle)


__all__ = ["GPUDevice", "ExecutionResult"]
