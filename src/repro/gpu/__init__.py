"""GPU execution-model substrate.

The paper evaluates FIDESlib on four NVIDIA GPUs (Table IV).  This
reproduction has no physical GPUs, so this subpackage provides the
substitute documented in DESIGN.md: an analytical + event-based execution
model with the quantities that determine FHE performance on real
hardware -- memory bandwidth, L2 capacity and reuse, integer throughput,
kernel-launch overhead and stream overlap.

* :mod:`repro.gpu.platforms` -- the Table IV platform specifications.
* :mod:`repro.gpu.cache` -- the last-level-cache reuse model.
* :mod:`repro.gpu.kernel` -- kernel descriptors and their cost model.
* :mod:`repro.gpu.stream` -- CUDA-stream-style scheduling (launch overhead
  hiding, per-stream serialisation).
* :mod:`repro.gpu.device` -- a device that executes kernel lists and
  reports timing breakdowns.
* :mod:`repro.gpu.memory` -- device-memory tracking for the model.
"""

from repro.gpu.platforms import (
    ComputePlatform,
    CPU_RYZEN_9_7900,
    GPU_RTX_4060TI,
    GPU_RTX_4090,
    GPU_RTX_A4500,
    GPU_V100,
    ALL_GPUS,
    ALL_PLATFORMS,
)
from repro.gpu.kernel import Kernel, KernelCostModel
from repro.gpu.device import GPUDevice, ExecutionResult
from repro.gpu.stream import ScheduledKernel, ScheduleResult, StreamScheduler

__all__ = [
    "ComputePlatform",
    "CPU_RYZEN_9_7900",
    "GPU_RTX_4060TI",
    "GPU_RTX_4090",
    "GPU_RTX_A4500",
    "GPU_V100",
    "ALL_GPUS",
    "ALL_PLATFORMS",
    "Kernel",
    "KernelCostModel",
    "GPUDevice",
    "ExecutionResult",
    "StreamScheduler",
    "ScheduleResult",
    "ScheduledKernel",
]
