"""Kernel descriptors and the per-kernel cost model.

Every CKKS operation is decomposed by :mod:`repro.perf.costmodel` into a
sequence of :class:`Kernel` descriptors -- the same granularity at which
FIDESlib launches CUDA kernels.  A kernel is characterised by how many
bytes it reads and writes, how many integer operations it performs, the
working set it keeps hot, and which CUDA stream it is issued to.

The roofline-style cost model charges
``max(compute_time, memory_time)`` per kernel, where memory time uses the
cache-aware effective bandwidth of :class:`repro.gpu.cache.CacheModel`.
Kernel-launch overhead is accounted by the stream scheduler, not here,
because limb batching and multi-stream execution amortise it (§III-F.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.cache import CacheModel
from repro.gpu.platforms import ComputePlatform


@dataclass
class Kernel:
    """One device kernel launch (or ``launches`` identical launches).

    Repeated identical launches are represented by a single descriptor with
    ``launches > 1`` and aggregated byte/op volumes; the roofline time of
    the aggregate equals the sum of the individual times, while the
    working-set size (which determines cache behaviour) stays that of a
    single launch.
    """

    name: str
    bytes_read: float
    bytes_written: float
    int_ops: float
    working_set_bytes: float = 0.0
    reuse: float = 1.0
    stream: int = 0
    fused: int = 1  # number of logical operations fused into this launch
    launches: float = 1.0

    @property
    def bytes_moved(self) -> float:
        """Total bytes transferred by the kernel."""
        return self.bytes_read + self.bytes_written

    def scaled(self, factor: float) -> "Kernel":
        """Return a copy representing ``factor`` times as many launches."""
        return Kernel(
            name=self.name,
            bytes_read=self.bytes_read * factor,
            bytes_written=self.bytes_written * factor,
            int_ops=self.int_ops * factor,
            working_set_bytes=self.working_set_bytes,
            reuse=self.reuse,
            stream=self.stream,
            fused=self.fused,
            launches=self.launches * factor,
        )


@dataclass
class KernelTiming:
    """Timing breakdown of a single kernel."""

    kernel: Kernel
    compute_time: float
    memory_time: float

    @property
    def execution_time(self) -> float:
        """Roofline execution time (excluding launch overhead)."""
        return max(self.compute_time, self.memory_time)

    @property
    def bound(self) -> str:
        """Whether the kernel is compute- or memory-bound."""
        return "compute" if self.compute_time >= self.memory_time else "memory"


@dataclass
class KernelCostModel:
    """Roofline cost model for a compute platform."""

    platform: ComputePlatform
    compute_efficiency: float = 0.5
    bandwidth_efficiency: float = 0.85
    cache: CacheModel = field(default=None)

    def __post_init__(self) -> None:
        if self.cache is None:
            self.cache = CacheModel(self.platform)

    def time_kernel(self, kernel: Kernel) -> KernelTiming:
        """Return the roofline timing of one kernel."""
        compute = kernel.int_ops / (self.platform.int_ops_per_s * self.compute_efficiency)
        working_set = kernel.working_set_bytes or kernel.bytes_moved
        bandwidth = self.cache.effective_bandwidth(working_set, kernel.reuse)
        memory = kernel.bytes_moved / (bandwidth * self.bandwidth_efficiency)
        return KernelTiming(kernel=kernel, compute_time=compute, memory_time=memory)

    def time_kernels(self, kernels: list[Kernel]) -> list[KernelTiming]:
        """Time a list of kernels individually."""
        return [self.time_kernel(k) for k in kernels]


__all__ = ["Kernel", "KernelTiming", "KernelCostModel"]
