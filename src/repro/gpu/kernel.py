"""Kernel descriptors, shared kernel formulas and the per-kernel cost model.

Every CKKS operation is decomposed into a sequence of :class:`Kernel`
descriptors -- the same granularity at which FIDESlib launches CUDA
kernels.  A kernel is characterised by how many bytes it reads and writes,
how many integer operations it performs, the working set it keeps hot, and
which CUDA stream it is issued to.

Two producers build these descriptors and must agree on the byte/op
conventions:

* :mod:`repro.perf.costmodel` -- the analytical decomposition of each CKKS
  primitive (hand-built workload math); and
* :mod:`repro.core.dispatch` -- the execution plane, which records kernels
  from the *real* data plane as it executes, with shapes taken from the
  live arrays.

The free functions :func:`elementwise_kernel`, :func:`ntt_kernel` and
:func:`base_conversion_kernel` are that single source of truth: both
producers call them, so a recorded trace and the hand-built cost of the
same operation differ only where the executed kernel *structure* differs
-- which is exactly the drift the reconciliation check
(:func:`repro.perf.calibration.reconcile_trace`) exists to catch.

The roofline-style cost model charges
``max(compute_time, memory_time)`` per kernel, where memory time uses the
cache-aware effective bandwidth of :class:`repro.gpu.cache.CacheModel`.
Kernel-launch overhead is accounted by the stream scheduler, not here,
because limb batching and multi-stream execution amortise it (§III-F.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.gpu.cache import CacheModel
from repro.gpu.platforms import ComputePlatform

#: Bytes per residue element (64-bit limbs).
ELEMENT_BYTES = 8

# Table III integer-operation counts of the modular primitives.  These are
# the canonical values shared by the cost model's ArithmeticCosts defaults
# (:mod:`repro.perf.calibration`) and the execution-plane dispatcher, so
# the two kernel producers cannot drift apart silently.
#: int ops of one modular multiplication with Barrett reduction.
MODMUL_OPS = 6.0
#: int ops of one Shoup (constant-operand) modular multiplication.
SHOUP_MUL_OPS = 5.0
#: int ops of one modular addition/subtraction.
MODADD_OPS = 2.0
#: int ops of one NTT butterfly (Shoup multiply + add + sub).
BUTTERFLY_OPS = 9.0
#: int ops of one multiply-accumulate in the base-conversion kernel.
BASECONV_MAC_OPS = 4.0

#: Default multiplier of :func:`default_working_set` (how many limb-batches
#: of intermediate buffers the in-flight streams keep resident, §III-F.1).
WORKING_SET_FACTOR = 8.0


@dataclass
class Kernel:
    """One device kernel launch (or ``launches`` identical launches).

    Repeated identical launches are represented by a single descriptor with
    ``launches > 1`` and aggregated byte/op volumes; the roofline time of
    the aggregate equals the sum of the individual times, while the
    working-set size (which determines cache behaviour) stays that of a
    single launch.
    """

    name: str
    bytes_read: float
    bytes_written: float
    int_ops: float
    working_set_bytes: float = 0.0
    reuse: float = 1.0
    stream: int = 0
    fused: int = 1  # number of logical operations fused into this launch
    launches: float = 1.0
    device: int = 0  # which cluster device launches this kernel

    @property
    def bytes_moved(self) -> float:
        """Total bytes transferred by the kernel."""
        return self.bytes_read + self.bytes_written

    def scaled(self, factor: float) -> "Kernel":
        """Return a copy representing ``factor`` times as many launches."""
        return Kernel(
            name=self.name,
            bytes_read=self.bytes_read * factor,
            bytes_written=self.bytes_written * factor,
            int_ops=self.int_ops * factor,
            working_set_bytes=self.working_set_bytes,
            reuse=self.reuse,
            stream=self.stream,
            fused=self.fused,
            launches=self.launches * factor,
            device=self.device,
        )


@dataclass
class TransferKernel(Kernel):
    """A device-to-device copy over an interconnect link.

    Transfer kernels are *link* work, not device work: the multi-device
    stream scheduler serialises them on the ``{src, dst}`` link resource
    instead of a device's execution resource, and
    :class:`repro.perf.trace_model.TraceCostModel` prices them from the
    link's bandwidth/latency rather than the roofline.  ``device`` is the
    source device (whose host thread issues the copy).
    """

    src_device: int = 0
    dst_device: int = 0

    @property
    def payload_bytes(self) -> float:
        """Bytes that cross the link (one direction)."""
        return self.bytes_written

    @property
    def is_self_transfer(self) -> bool:
        """True for a same-device transfer (a no-op kernel)."""
        return self.src_device == self.dst_device


def transfer_kernel(tag: str, payload_bytes: float, src_device: int,
                    dst_device: int) -> TransferKernel:
    """One interconnect transfer of ``payload_bytes`` from src to dst.

    A self-transfer (``src == dst``) degenerates to a zero-byte,
    zero-launch no-op: the data is already resident, so it costs neither
    link time nor launch overhead.
    """
    if src_device == dst_device:
        payload_bytes = 0.0
    return TransferKernel(
        name=f"{tag}[{src_device}->{dst_device}]",
        bytes_read=payload_bytes,
        bytes_written=payload_bytes,
        int_ops=0.0,
        working_set_bytes=payload_bytes,
        launches=0.0 if src_device == dst_device else 1.0,
        device=src_device,
        src_device=src_device,
        dst_device=dst_device,
    )


@dataclass
class KernelTiming:
    """Timing breakdown of a single kernel."""

    kernel: Kernel
    compute_time: float
    memory_time: float

    @property
    def execution_time(self) -> float:
        """Roofline execution time (excluding launch overhead)."""
        return max(self.compute_time, self.memory_time)

    @property
    def bound(self) -> str:
        """Whether the kernel is compute- or memory-bound."""
        return "compute" if self.compute_time >= self.memory_time else "memory"


# ---------------------------------------------------------------------------
# Shared kernel formulas (single source of truth for both producers)
# ---------------------------------------------------------------------------


def default_working_set(
    batch_limbs: float,
    n: int,
    *,
    polys: float = 2.0,
    factor: float = WORKING_SET_FACTOR,
) -> float:
    """Bytes of data the in-flight kernels keep hot in the L2 cache."""
    return factor * max(1.0, min(polys / 2.0, 2.0)) * batch_limbs * n * ELEMENT_BYTES


def elementwise_kernel(
    tag: str,
    limbs: int,
    n: int,
    *,
    polys_read: float,
    polys_written: float,
    ops_per_element: float,
    reuse: float = 1.0,
    working_set_bytes: float | None = None,
    stream: int = 0,
    launches: float = 1.0,
) -> Kernel:
    """One element-wise kernel over a ``(limbs, n)`` residue stack."""
    elements = limbs * n
    if working_set_bytes is None:
        working_set_bytes = default_working_set(limbs, n, polys=polys_read + polys_written)
    return Kernel(
        name=f"{tag}[{limbs}]",
        bytes_read=polys_read * elements * ELEMENT_BYTES,
        bytes_written=polys_written * elements * ELEMENT_BYTES,
        int_ops=ops_per_element * elements,
        working_set_bytes=working_set_bytes,
        reuse=max(reuse, 1.5),
        stream=stream,
        launches=launches,
    )


def ntt_kernel(
    tag: str,
    limbs: int,
    n: int,
    *,
    butterfly_ops: float = BUTTERFLY_OPS,
    compute_factor: float = 1.0,
    fused_ops_per_element: float = 0.0,
    extra_bytes_read: float = 0.0,
    working_set_bytes: float | None = None,
    stream: int = 0,
    element_bytes: int = ELEMENT_BYTES,
) -> Kernel:
    """One hierarchical (i)NTT kernel (4 memory accesses per element, Fig. 3).

    ``fused_ops_per_element`` is the arithmetic of element-wise pre/post
    processing folded into the transform (the §III-F.5 fusions); it adds
    int ops but no memory traffic.  ``extra_bytes_read`` charges streamed
    twiddle vectors or unfused element-wise traffic.  ``element_bytes``
    is the per-residue storage width (16 on the double-word backend).
    """
    elements = limbs * n
    butterflies = limbs * (n / 2) * math.log2(n)
    if working_set_bytes is None:
        working_set_bytes = (
            default_working_set(limbs, n) * element_bytes / ELEMENT_BYTES
        )
    return Kernel(
        name=f"{tag}[{limbs}]",
        bytes_read=2.0 * elements * element_bytes + extra_bytes_read,
        bytes_written=2.0 * elements * element_bytes,
        int_ops=butterflies * butterfly_ops * compute_factor + fused_ops_per_element * elements,
        working_set_bytes=working_set_bytes,
        reuse=2.0,
        stream=stream,
    )


def base_conversion_kernel(
    tag: str,
    source_limbs: int,
    target_limbs: int,
    n: int,
    *,
    mac_ops: float = BASECONV_MAC_OPS,
    working_set_bytes: float | None = None,
    element_bytes: int = ELEMENT_BYTES,
) -> Kernel:
    """One fast-base-conversion kernel (Equation 1, the §III-F.3 kernel)."""
    if working_set_bytes is None:
        working_set_bytes = (source_limbs + target_limbs) * n * element_bytes
    return Kernel(
        name=f"{tag}[{source_limbs}->{target_limbs}]",
        bytes_read=source_limbs * n * element_bytes,
        bytes_written=target_limbs * n * element_bytes,
        int_ops=source_limbs * target_limbs * n * mac_ops,
        working_set_bytes=working_set_bytes,
        reuse=float(max(2, target_limbs)),
    )


@dataclass
class KernelCostModel:
    """Roofline cost model for a compute platform."""

    platform: ComputePlatform
    compute_efficiency: float = 0.5
    bandwidth_efficiency: float = 0.85
    cache: CacheModel = field(default=None)

    def __post_init__(self) -> None:
        if self.cache is None:
            self.cache = CacheModel(self.platform)

    def time_kernel(self, kernel: Kernel) -> KernelTiming:
        """Return the roofline timing of one kernel."""
        compute = kernel.int_ops / (self.platform.int_ops_per_s * self.compute_efficiency)
        working_set = kernel.working_set_bytes or kernel.bytes_moved
        bandwidth = self.cache.effective_bandwidth(working_set, kernel.reuse)
        memory = kernel.bytes_moved / (bandwidth * self.bandwidth_efficiency)
        return KernelTiming(kernel=kernel, compute_time=compute, memory_time=memory)

    def time_kernels(self, kernels: list[Kernel]) -> list[KernelTiming]:
        """Time a list of kernels individually."""
        return [self.time_kernel(k) for k in kernels]


__all__ = [
    "Kernel",
    "TransferKernel",
    "transfer_kernel",
    "KernelTiming",
    "KernelCostModel",
    "ELEMENT_BYTES",
    "MODMUL_OPS",
    "SHOUP_MUL_OPS",
    "MODADD_OPS",
    "BUTTERFLY_OPS",
    "BASECONV_MAC_OPS",
    "WORKING_SET_FACTOR",
    "default_working_set",
    "elementwise_kernel",
    "ntt_kernel",
    "base_conversion_kernel",
]
