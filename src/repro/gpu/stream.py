"""CUDA-stream-style scheduling of kernel launches.

§III-F.1 of the paper: FIDESlib runs independent per-limb(-batch) kernels
asynchronously in separate CUDA streams so that (a) small working sets
keep L2 locality and (b) the CPU-side kernel-launch overhead is hidden
behind device execution.  With a single stream (the Phantom baseline) the
launch overhead of every kernel sits on the critical path of fast GPUs.

The scheduler models exactly that trade-off:

* the device can only execute one kernel's worth of *work* at a time
  (kernel times already assume whole-device utilisation), so the device
  busy time is the sum of kernel execution times;
* the CPU issues launches serially, one every ``launch_overhead_us``;
* with ``streams > 1`` the device never waits for a launch as long as
  another stream has a ready kernel, so the makespan approaches
  ``max(total_execution, total_launch)``; with one stream every kernel
  pays its launch latency before executing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.kernel import KernelTiming
from repro.gpu.platforms import ComputePlatform


@dataclass
class ScheduleResult:
    """Outcome of scheduling a kernel sequence."""

    makespan: float
    execution_time: float
    launch_time: float
    launch_hidden: float
    kernel_count: int

    @property
    def launch_bound(self) -> bool:
        """True when kernel-launch overhead dominates the makespan."""
        return self.launch_time > self.execution_time


class StreamScheduler:
    """Schedules kernel timings onto one or more CUDA streams."""

    def __init__(self, platform: ComputePlatform, streams: int = 1) -> None:
        if streams < 1:
            raise ValueError("at least one stream is required")
        self.platform = platform
        self.streams = streams

    def schedule(self, timings: list[KernelTiming]) -> ScheduleResult:
        """Return the makespan of executing ``timings`` on this device."""
        launch = self.platform.launch_overhead_us * 1e-6
        execution = sum(t.execution_time for t in timings)
        launch_count = sum(t.kernel.launches for t in timings)
        total_launch = launch * launch_count
        if not timings:
            return ScheduleResult(0.0, 0.0, 0.0, 0.0, 0)
        if self.streams == 1:
            # Serial launches on a single stream: every kernel pays its
            # launch latency before executing, so the overhead sits on the
            # critical path (the behaviour the paper attributes to the
            # non-batched baseline).
            makespan = total_launch + execution
        else:
            # Multi-stream: launches overlap device execution as long as any
            # stream has work queued; the makespan approaches whichever of
            # the two serial resources (CPU launches, device execution) is
            # larger, plus the pipeline fill of the first launch.
            makespan = max(execution, total_launch) + launch
        hidden_total = total_launch + execution - makespan + launch
        return ScheduleResult(
            makespan=makespan,
            execution_time=execution,
            launch_time=total_launch,
            launch_hidden=max(0.0, hidden_total),
            kernel_count=int(round(launch_count)),
        )


__all__ = ["StreamScheduler", "ScheduleResult"]
