"""Dependency-aware multi-stream scheduling of kernel launches.

§III-F.1 of the paper: FIDESlib runs independent per-limb(-batch) kernels
asynchronously in separate CUDA streams so that (a) small working sets
keep L2 locality and (b) the CPU-side kernel-launch overhead is hidden
behind device execution.  With a single stream (the Phantom baseline) the
launch overhead of every kernel sits on the critical path of fast GPUs.

The scheduler is an event-based simulation of exactly that trade-off:

* the device can only execute one kernel's worth of *work* at a time
  (kernel times already assume whole-device utilisation), so the device
  busy time is the sum of kernel execution times;
* the CPU issues launches serially, one every ``launch_overhead_us`` per
  launch, and each stream holds at most one in-flight kernel: a launch
  into a stream waits until that stream's previous kernel has completed
  (with one stream the CPU therefore serialises launch → execute → launch,
  which is the behaviour the paper attributes to the non-batched
  baseline);
* a greedy ready-kernel scheduler walks the dependency DAG (when one is
  supplied, e.g. from a recorded
  :class:`repro.core.dispatch.KernelTrace`): at every step the
  lowest-index kernel whose dependencies have all been issued is launched
  into the stream that lets it start earliest;
* a dependency *within* a stream is enforced by the stream's FIFO order
  for free, but a dependency on a kernel in a *different* stream requires
  host-side synchronisation: the CPU cannot issue the launch until that
  dependency has finished.  This is what makes the DAG bind: dependent
  kernel chains pay their launch overhead on the critical path no matter
  how many streams exist, while independent kernels (the per-limb batches
  of §III-F.1) spread across streams and hide it -- exactly the paper's
  claim that only *independent* kernels benefit from multi-stream
  execution.  The scheduler therefore prefers placing a kernel on the
  stream where its latest dependency ran.

The timeline summary reduces to the previous closed-form numbers in the
degenerate cases that pin the refactor:

* ``streams == 1``: the makespan is exactly
  ``total_launch + total_execution`` (every kernel pays its launch
  latency on the critical path), so ``launch_hidden == 0``;
* ``streams > 1`` with independent kernels and execution-bound work: the
  makespan is exactly ``launch + total_execution`` -- the steady-state
  pipeline bound ``max(execution, launch_time) + launch`` of the old
  closed form -- and in the launch-bound regime it converges to
  ``total_launch`` as before.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Sequence

from repro.gpu.kernel import KernelTiming
from repro.gpu.platforms import ComputePlatform


@dataclass(frozen=True)
class ScheduledKernel:
    """Per-kernel start/end times of one simulated launch."""

    index: int
    name: str
    stream: int
    launch_start: float
    launch_end: float
    start: float
    end: float

    @property
    def execution_time(self) -> float:
        """Device execution time of this kernel."""
        return self.end - self.start


@dataclass
class ScheduleResult:
    """Outcome of scheduling a kernel sequence."""

    makespan: float
    execution_time: float
    launch_time: float
    launch_hidden: float
    kernel_count: int
    timeline: tuple[ScheduledKernel, ...] = field(default_factory=tuple)

    @property
    def launch_bound(self) -> bool:
        """True when kernel-launch overhead dominates the makespan."""
        return self.launch_time > self.execution_time

    def stream_timelines(self) -> dict[int, list[ScheduledKernel]]:
        """Per-stream execution timelines, each sorted by start time."""
        streams: dict[int, list[ScheduledKernel]] = {}
        for slot in self.timeline:
            streams.setdefault(slot.stream, []).append(slot)
        for slots in streams.values():
            slots.sort(key=lambda slot: slot.start)
        return streams


class StreamScheduler:
    """Schedules kernel timings onto one or more CUDA streams."""

    def __init__(self, platform: ComputePlatform, streams: int = 1) -> None:
        if streams < 1:
            raise ValueError("at least one stream is required")
        self.platform = platform
        self.streams = streams

    def schedule(
        self,
        timings: list[KernelTiming],
        dependencies: Sequence[Sequence[int]] | None = None,
    ) -> ScheduleResult:
        """Simulate executing ``timings`` on this device.

        ``dependencies`` optionally gives, per kernel, the indices of
        earlier kernels that must finish before it may execute (the
        dependency DAG of a recorded trace).  Without it every kernel is
        treated as independent and issued in list order.
        """
        launch = self.platform.launch_overhead_us * 1e-6
        count = len(timings)
        execution = sum(t.execution_time for t in timings)
        launch_count = sum(t.kernel.launches for t in timings)
        total_launch = launch * launch_count
        if not timings:
            return ScheduleResult(0.0, 0.0, 0.0, 0.0, 0)

        deps: list[tuple[int, ...]] = (
            [tuple(d) for d in dependencies]
            if dependencies is not None
            else [()] * count
        )
        if len(deps) != count:
            raise ValueError(
                f"dependency list length {len(deps)} does not match "
                f"{count} kernels"
            )
        for index, kernel_deps in enumerate(deps):
            if any(d >= index or d < 0 for d in kernel_deps):
                raise ValueError(
                    f"kernel {index} depends on {kernel_deps}; dependencies "
                    f"must reference earlier kernels"
                )

        # Greedy ready-kernel scheduling over the DAG: lowest trace index
        # among the kernels whose dependencies have all been issued.
        dependents: list[list[int]] = [[] for _ in range(count)]
        missing = [0] * count
        for index, kernel_deps in enumerate(deps):
            missing[index] = len(kernel_deps)
            for d in kernel_deps:
                dependents[d].append(index)
        ready = [i for i in range(count) if missing[i] == 0]
        heapq.heapify(ready)

        cpu_free = 0.0
        device_free = 0.0
        stream_free = [0.0] * self.streams
        finish = [0.0] * count
        stream_of = [0] * count
        timeline: list[ScheduledKernel] = []
        issued = 0
        while ready:
            index = heapq.heappop(ready)
            timing = timings[index]
            # Pick the stream with the earliest possible launch: same-stream
            # dependencies ride the stream FIFO, cross-stream dependencies
            # stall the CPU until they finish (host-side synchronisation).
            stream = 0
            launch_start = float("inf")
            for candidate in range(self.streams):
                cross_wait = max(
                    (
                        finish[d]
                        for d in deps[index]
                        if stream_of[d] != candidate
                    ),
                    default=0.0,
                )
                candidate_start = max(cpu_free, stream_free[candidate], cross_wait)
                if candidate_start < launch_start:
                    stream = candidate
                    launch_start = candidate_start
            launch_end = launch_start + timing.kernel.launches * launch
            cpu_free = launch_end
            dep_ready = max((finish[d] for d in deps[index]), default=0.0)
            start = max(launch_end, device_free, dep_ready)
            end = start + timing.execution_time
            stream_free[stream] = end
            device_free = end
            finish[index] = end
            stream_of[index] = stream
            timeline.append(
                ScheduledKernel(
                    index=index,
                    name=timing.kernel.name,
                    stream=stream,
                    launch_start=launch_start,
                    launch_end=launch_end,
                    start=start,
                    end=end,
                )
            )
            issued += 1
            for dependent in dependents[index]:
                missing[dependent] -= 1
                if missing[dependent] == 0:
                    heapq.heappush(ready, dependent)
        if issued != count:
            raise ValueError("dependency graph contains a cycle")

        makespan = max(slot.end for slot in timeline)
        return ScheduleResult(
            makespan=makespan,
            execution_time=execution,
            launch_time=total_launch,
            # Launch overhead that did not extend the makespan (zero on a
            # single stream, where nothing overlaps).
            launch_hidden=max(0.0, total_launch + execution - makespan),
            kernel_count=int(round(launch_count)),
            timeline=tuple(timeline),
        )


__all__ = ["StreamScheduler", "ScheduleResult", "ScheduledKernel"]
