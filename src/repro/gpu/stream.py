"""Dependency-aware multi-stream (and multi-device) kernel scheduling.

§III-F.1 of the paper: FIDESlib runs independent per-limb(-batch) kernels
asynchronously in separate CUDA streams so that (a) small working sets
keep L2 locality and (b) the CPU-side kernel-launch overhead is hidden
behind device execution.  With a single stream (the Phantom baseline) the
launch overhead of every kernel sits on the critical path of fast GPUs.

The scheduler is an event-based simulation of exactly that trade-off:

* the device can only execute one kernel's worth of *work* at a time
  (kernel times already assume whole-device utilisation), so the device
  busy time is the sum of kernel execution times;
* the CPU issues launches serially, one every ``launch_overhead_us`` per
  launch, and each stream holds at most one in-flight kernel: a launch
  into a stream waits until that stream's previous kernel has completed
  (with one stream the CPU therefore serialises launch → execute → launch,
  which is the behaviour the paper attributes to the non-batched
  baseline);
* a greedy ready-kernel scheduler walks the dependency DAG (when one is
  supplied, e.g. from a recorded
  :class:`repro.core.dispatch.KernelTrace`): at every step the
  lowest-index kernel whose dependencies have all been issued is launched
  into the stream that lets it start earliest;
* a dependency *within* a stream is enforced by the stream's FIFO order
  for free, but a dependency on a kernel in a *different* stream requires
  host-side synchronisation: the CPU cannot issue the launch until that
  dependency has finished.  This is what makes the DAG bind: dependent
  kernel chains pay their launch overhead on the critical path no matter
  how many streams exist, while independent kernels (the per-limb batches
  of §III-F.1) spread across streams and hide it -- exactly the paper's
  claim that only *independent* kernels benefit from multi-stream
  execution.  The scheduler therefore prefers placing a kernel on the
  stream where its latest dependency ran.

Multi-device generalisation (the cluster plane)
-----------------------------------------------

Given a :class:`repro.cluster.topology.ClusterTopology`, every device gets
its *own* stream set, its own serial execution resource and its own host
launch thread (one driver thread per device, the standard multi-GPU
arrangement), so independent per-device work is embarrassingly parallel.
:class:`~repro.gpu.kernel.TransferKernel` events are *link* work: a
transfer occupies the ``{src, dst}`` interconnect link -- a serial
resource, so two transfers over the same pair never overlap -- and is
issued by the source device's host thread.  A same-device transfer is a
no-op (zero time, zero launches).  Cross-device dependency edges behave
like cross-stream ones: the launch waits for the dependency (which, when
the trace was rewritten by a :class:`~repro.cluster.sharding.ShardPlan`,
is the completed transfer that staged the data).

The timeline summary reduces to the previous closed-form numbers in the
degenerate cases that pin the refactor:

* ``streams == 1``: the makespan is exactly
  ``total_launch + total_execution`` (every kernel pays its launch
  latency on the critical path), so ``launch_hidden == 0``;
* ``streams > 1`` with independent kernels and execution-bound work: the
  makespan is exactly ``launch + total_execution`` -- the steady-state
  pipeline bound ``max(execution, launch_time) + launch`` of the old
  closed form -- and in the launch-bound regime it converges to
  ``total_launch`` as before;
* a one-device topology (or an all-device-0 trace scheduled on a
  multi-device one) is bit-identical to the single-device scheduler.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Sequence

from repro.gpu.kernel import KernelTiming, TransferKernel
from repro.gpu.platforms import ComputePlatform


@dataclass(frozen=True)
class ScheduledKernel:
    """Per-kernel start/end times of one simulated launch."""

    index: int
    name: str
    stream: int
    launch_start: float
    launch_end: float
    start: float
    end: float
    device: int = 0
    #: Unordered link pair occupied by a cross-device transfer, else None.
    link: tuple[int, int] | None = None

    @property
    def execution_time(self) -> float:
        """Device (or link) execution time of this kernel."""
        return self.end - self.start


@dataclass
class ScheduleResult:
    """Outcome of scheduling a kernel sequence."""

    makespan: float
    execution_time: float
    launch_time: float
    launch_hidden: float
    kernel_count: int
    timeline: tuple[ScheduledKernel, ...] = field(default_factory=tuple)
    #: Total time spent on interconnect links (zero without transfers).
    transfer_time: float = 0.0

    @property
    def launch_bound(self) -> bool:
        """True when kernel-launch overhead dominates the makespan."""
        return self.launch_time > self.execution_time

    def stream_timelines(self) -> dict[int, list[ScheduledKernel]]:
        """Per-stream execution timelines, each sorted by start time."""
        streams: dict[int, list[ScheduledKernel]] = {}
        for slot in self.timeline:
            if slot.link is None:
                streams.setdefault(slot.stream, []).append(slot)
        for slots in streams.values():
            slots.sort(key=lambda slot: slot.start)
        return streams

    def device_timelines(self) -> dict[int, list[ScheduledKernel]]:
        """Per-device execution timelines (transfers excluded)."""
        devices: dict[int, list[ScheduledKernel]] = {}
        for slot in self.timeline:
            if slot.link is None:
                devices.setdefault(slot.device, []).append(slot)
        for slots in devices.values():
            slots.sort(key=lambda slot: slot.start)
        return devices

    def link_timelines(self) -> dict[tuple[int, int], list[ScheduledKernel]]:
        """Per-link transfer timelines, each sorted by start time."""
        links: dict[tuple[int, int], list[ScheduledKernel]] = {}
        for slot in self.timeline:
            if slot.link is not None:
                links.setdefault(slot.link, []).append(slot)
        for slots in links.values():
            slots.sort(key=lambda slot: slot.start)
        return links

    def device_busy(self) -> dict[int, float]:
        """Device busy seconds (sum of execution times) per device."""
        busy: dict[int, float] = {}
        for device, slots in self.device_timelines().items():
            busy[device] = sum(slot.execution_time for slot in slots)
        return busy


class StreamScheduler:
    """Schedules kernel timings onto the streams of one or more devices.

    Without a ``topology`` this is the single-device scheduler of the
    execution plane.  With one, each device owns ``streams`` streams, a
    serial execution resource and a host launch thread, and
    :class:`TransferKernel` timings serialise on interconnect links.
    """

    def __init__(self, platform: ComputePlatform, streams: int = 1, *,
                 topology=None) -> None:
        if streams < 1:
            raise ValueError("at least one stream is required")
        self.platform = platform
        self.streams = streams
        self.topology = topology
        self.devices: tuple[ComputePlatform, ...] = (
            topology.devices if topology is not None else (platform,)
        )

    def schedule(
        self,
        timings: list[KernelTiming],
        dependencies: Sequence[Sequence[int]] | None = None,
    ) -> ScheduleResult:
        """Simulate executing ``timings`` on this device set.

        ``dependencies`` optionally gives, per kernel, the indices of
        earlier kernels that must finish before it may execute (the
        dependency DAG of a recorded trace).  Without it every kernel is
        treated as independent and issued in list order.
        """
        device_count = len(self.devices)
        launch_of = [p.launch_overhead_us * 1e-6 for p in self.devices]
        count = len(timings)
        execution = 0.0
        transfer = 0.0
        total_launch = 0.0
        for t in timings:
            device = t.kernel.device
            if not 0 <= device < device_count:
                raise ValueError(
                    f"kernel {t.kernel.name!r} targets device {device}, but "
                    f"this scheduler has devices 0..{device_count - 1}; pass "
                    f"a matching ClusterTopology"
                )
            if isinstance(t.kernel, TransferKernel) and not t.kernel.is_self_transfer:
                transfer += t.execution_time
            else:
                execution += t.execution_time
            total_launch += t.kernel.launches * launch_of[device]
        launch_count = sum(t.kernel.launches for t in timings)
        if not timings:
            return ScheduleResult(0.0, 0.0, 0.0, 0.0, 0)

        deps: list[tuple[int, ...]] = (
            [tuple(d) for d in dependencies]
            if dependencies is not None
            else [()] * count
        )
        if len(deps) != count:
            raise ValueError(
                f"dependency list length {len(deps)} does not match "
                f"{count} kernels"
            )
        for index, kernel_deps in enumerate(deps):
            if any(d >= index or d < 0 for d in kernel_deps):
                raise ValueError(
                    f"kernel {index} depends on {kernel_deps}; dependencies "
                    f"must reference earlier kernels"
                )

        # Greedy ready-kernel scheduling over the DAG: lowest trace index
        # among the kernels whose dependencies have all been issued.
        dependents: list[list[int]] = [[] for _ in range(count)]
        missing = [0] * count
        for index, kernel_deps in enumerate(deps):
            missing[index] = len(kernel_deps)
            for d in kernel_deps:
                dependents[d].append(index)
        ready = [i for i in range(count) if missing[i] == 0]
        heapq.heapify(ready)

        cpu_free = [0.0] * device_count
        device_free = [0.0] * device_count
        stream_free = [[0.0] * self.streams for _ in range(device_count)]
        link_free: dict[tuple[int, int], float] = {}
        finish = [0.0] * count
        stream_of = [0] * count
        device_of = [0] * count
        timeline: list[ScheduledKernel] = []
        issued = 0
        while ready:
            index = heapq.heappop(ready)
            timing = timings[index]
            kernel = timing.kernel
            device = kernel.device
            dep_ready = max((finish[d] for d in deps[index]), default=0.0)
            if isinstance(kernel, TransferKernel) and not kernel.is_self_transfer:
                # Link work: issued by the source device's host thread,
                # serialised on the {src, dst} interconnect link.
                pair = (min(kernel.src_device, kernel.dst_device),
                        max(kernel.src_device, kernel.dst_device))
                launch_start = max(cpu_free[device], dep_ready)
                launch_end = launch_start + kernel.launches * launch_of[device]
                cpu_free[device] = launch_end
                start = max(launch_end, link_free.get(pair, 0.0))
                end = start + timing.execution_time
                link_free[pair] = end
                finish[index] = end
                device_of[index] = device
                timeline.append(
                    ScheduledKernel(
                        index=index,
                        name=kernel.name,
                        stream=0,
                        launch_start=launch_start,
                        launch_end=launch_end,
                        start=start,
                        end=end,
                        device=device,
                        link=pair,
                    )
                )
            else:
                # Pick the stream with the earliest possible launch:
                # same-device same-stream dependencies ride the stream FIFO,
                # cross-stream (and cross-device) dependencies stall this
                # device's host thread until they finish.
                stream = 0
                launch_start = float("inf")
                for candidate in range(self.streams):
                    cross_wait = max(
                        (
                            finish[d]
                            for d in deps[index]
                            if stream_of[d] != candidate or device_of[d] != device
                        ),
                        default=0.0,
                    )
                    candidate_start = max(
                        cpu_free[device], stream_free[device][candidate], cross_wait
                    )
                    if candidate_start < launch_start:
                        stream = candidate
                        launch_start = candidate_start
                launch_end = launch_start + kernel.launches * launch_of[device]
                cpu_free[device] = launch_end
                start = max(launch_end, device_free[device], dep_ready)
                end = start + timing.execution_time
                stream_free[device][stream] = end
                device_free[device] = end
                finish[index] = end
                stream_of[index] = stream
                device_of[index] = device
                timeline.append(
                    ScheduledKernel(
                        index=index,
                        name=kernel.name,
                        stream=stream,
                        launch_start=launch_start,
                        launch_end=launch_end,
                        start=start,
                        end=end,
                        device=device,
                    )
                )
            issued += 1
            for dependent in dependents[index]:
                missing[dependent] -= 1
                if missing[dependent] == 0:
                    heapq.heappush(ready, dependent)
        if issued != count:
            raise ValueError("dependency graph contains a cycle")

        makespan = max(slot.end for slot in timeline)
        return ScheduleResult(
            makespan=makespan,
            execution_time=execution,
            launch_time=total_launch,
            # Launch overhead that did not extend the makespan (zero on a
            # single stream, where nothing overlaps).
            launch_hidden=max(0.0, total_launch + execution - makespan),
            kernel_count=int(round(launch_count)),
            timeline=tuple(timeline),
            transfer_time=transfer,
        )


__all__ = ["StreamScheduler", "ScheduleResult", "ScheduledKernel"]
