"""Compute-platform specifications (Table IV of the paper).

Every performance experiment in the evaluation is parameterised by one of
these platforms.  The figures are taken directly from Table IV; the two
model-only fields (kernel-launch overhead and cache bandwidth multiplier)
use typical values for the respective hardware generations and are part of
the calibration documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ComputePlatform:
    """Static description of a CPU or GPU compute platform.

    Attributes
    ----------
    name:
        Marketing name used in the paper's tables and figures.
    kind:
        ``"gpu"`` or ``"cpu"``.
    frequency_ghz:
        Core/SM clock.
    compute_units:
        CPU cores or GPU streaming multiprocessors.
    int32_tops:
        Peak 32-bit integer tera-operations per second (Table IV).
    private_cache_kb:
        Per-core/per-SM data cache.
    shared_cache_mb:
        Last-level cache (GPU L2 / CPU L3).
    dram_gb:
        Device/system memory capacity.
    bandwidth_gbps:
        Peak DRAM bandwidth in GB/s.
    launch_overhead_us:
        CPU-side cost of issuing one kernel (GPU) or one parallel region
        (CPU); not in Table IV, part of the execution model.
    cache_bandwidth_multiplier:
        How much faster the last-level cache is than DRAM; part of the
        execution model.
    threads_per_core:
        SMT factor (CPUs only).
    """

    name: str
    kind: str
    frequency_ghz: float
    compute_units: int
    int32_tops: float
    private_cache_kb: int
    shared_cache_mb: float
    dram_gb: int
    bandwidth_gbps: float
    launch_overhead_us: float = 3.0
    cache_bandwidth_multiplier: float = 4.0
    threads_per_core: int = 1

    @property
    def shared_cache_bytes(self) -> int:
        """Last-level cache capacity in bytes."""
        return int(self.shared_cache_mb * (1 << 20))

    @property
    def bandwidth_bytes_per_s(self) -> float:
        """Peak DRAM bandwidth in bytes per second."""
        return self.bandwidth_gbps * 1e9

    @property
    def int_ops_per_s(self) -> float:
        """Peak integer throughput in operations per second."""
        return self.int32_tops * 1e12

    @property
    def is_gpu(self) -> bool:
        """True for GPU platforms."""
        return self.kind == "gpu"


#: AMD Ryzen 9 7900 (12 cores, SMT, AVX-512), DDR5-5200.
CPU_RYZEN_9_7900 = ComputePlatform(
    name="Ryzen 9 7900",
    kind="cpu",
    frequency_ghz=3.70,
    compute_units=12,
    int32_tops=2.13,
    private_cache_kb=1056,
    shared_cache_mb=64,
    dram_gb=64,
    bandwidth_gbps=81.0,
    launch_overhead_us=0.5,
    cache_bandwidth_multiplier=6.0,
    threads_per_core=2,
)

#: NVIDIA GeForce RTX 4060 Ti (Ada, 34 SMs, 32 MB L2, 288 GB/s GDDR6).
GPU_RTX_4060TI = ComputePlatform(
    name="RTX 4060 Ti",
    kind="gpu",
    frequency_ghz=2.31,
    compute_units=34,
    int32_tops=11.03,
    private_cache_kb=128,
    shared_cache_mb=32,
    dram_gb=16,
    bandwidth_gbps=288.0,
    launch_overhead_us=3.0,
    cache_bandwidth_multiplier=5.0,
)

#: NVIDIA RTX A4500 (Ampere, 56 SMs, 6 MB L2, 640 GB/s GDDR6).
GPU_RTX_A4500 = ComputePlatform(
    name="RTX A4500",
    kind="gpu",
    frequency_ghz=1.05,
    compute_units=56,
    int32_tops=11.83,
    private_cache_kb=128,
    shared_cache_mb=6,
    dram_gb=20,
    bandwidth_gbps=640.0,
    launch_overhead_us=3.5,
    cache_bandwidth_multiplier=4.0,
)

#: NVIDIA V100 (Volta, 80 SMs, 6 MB L2, 897 GB/s HBM2).
GPU_V100 = ComputePlatform(
    name="V100",
    kind="gpu",
    frequency_ghz=1.25,
    compute_units=80,
    int32_tops=14.13,
    private_cache_kb=128,
    shared_cache_mb=6,
    dram_gb=16,
    bandwidth_gbps=897.0,
    launch_overhead_us=4.0,
    cache_bandwidth_multiplier=3.5,
)

#: NVIDIA GeForce RTX 4090 (Ada, 128 SMs, 72 MB L2, ~1 TB/s GDDR6X).
GPU_RTX_4090 = ComputePlatform(
    name="RTX 4090",
    kind="gpu",
    frequency_ghz=2.24,
    compute_units=128,
    int32_tops=41.29,
    private_cache_kb=128,
    shared_cache_mb=72,
    dram_gb=24,
    bandwidth_gbps=1008.0,
    launch_overhead_us=2.5,
    cache_bandwidth_multiplier=5.0,
)

#: The four GPUs of Table IV in ascending bandwidth order.
ALL_GPUS = (GPU_RTX_4060TI, GPU_RTX_A4500, GPU_V100, GPU_RTX_4090)

#: Every platform of Table IV.
ALL_PLATFORMS = (CPU_RYZEN_9_7900,) + ALL_GPUS

#: Lookup by the short names used in figures.
PLATFORMS_BY_NAME = {p.name: p for p in ALL_PLATFORMS}


def platform(name: str) -> ComputePlatform:
    """Look up a Table IV platform by its figure short name.

    Raises a descriptive ``KeyError`` naming every available platform when
    the name is unknown (a bare dict miss would only echo the bad key).
    """
    try:
        return PLATFORMS_BY_NAME[name]
    except KeyError:
        available = ", ".join(sorted(PLATFORMS_BY_NAME))
        raise KeyError(
            f"unknown compute platform {name!r}; available platforms: {available}"
        ) from None


def platform_table() -> list[dict]:
    """Return Table IV as a list of row dictionaries (used by the bench)."""
    rows = []
    for p in ALL_PLATFORMS:
        rows.append(
            {
                "Compute Platform": ("CPU: " if p.kind == "cpu" else "GPU: ") + p.name,
                "Frequency": f"{p.frequency_ghz:.2f} GHz",
                "CPU Cores or SMs": p.compute_units,
                "32b INT TOPS": p.int32_tops,
                "Private Data Cache": f"{p.private_cache_kb} KB",
                "Shared Cache": f"{p.shared_cache_mb:g} MB",
                "DRAM Size": f"{p.dram_gb} GB",
                "Bandwidth": f"{p.bandwidth_gbps:g} GB/s",
            }
        )
    return rows


__all__ = [
    "ComputePlatform",
    "CPU_RYZEN_9_7900",
    "GPU_RTX_4060TI",
    "GPU_RTX_A4500",
    "GPU_V100",
    "GPU_RTX_4090",
    "ALL_GPUS",
    "ALL_PLATFORMS",
    "PLATFORMS_BY_NAME",
    "platform",
    "platform_table",
]
