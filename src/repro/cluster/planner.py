"""Cost-model-driven shard planning: member-shard vs limb-shard crossover.

The planner prices both :class:`~repro.cluster.sharding.ShardPlan`
strategies for a recorded trace on a given
:class:`~repro.cluster.topology.ClusterTopology` and picks the cheaper
one.  The trade-off it quantifies:

* **member-shard** has zero communication but needs ``B ≥ D`` members to
  fill the cluster, and its per-device kernels shrink with ``1/D`` (worse
  launch amortisation);
* **limb-shard** parallelises even a single ciphertext, but pays an
  all-gather over the interconnect at every base-conversion boundary --
  a cost that scales with ``D·(D-1)`` transfers per boundary and inversely
  with link bandwidth.

Pricing both per batch size yields the **crossover**: the smallest batch
at which member sharding beats limb sharding on this topology.  On a
slow-link (PCIe) box the crossover is at ``B = 1`` or 2 -- member-shard
nearly everywhere; on an NVLink box limb-shard holds on longer for small
batches.  As link bandwidth tends to zero, limb-shard transfers dominate
and member-shard wins at every batch size (the monotonicity the tests
pin).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.cluster.sharding import LimbShardPlan, MemberShardPlan, ShardPlan
from repro.cluster.topology import ClusterTopology
from repro.perf.trace_model import TraceCostModel, TraceReport


@dataclass(frozen=True)
class PlanComparison:
    """Priced member-shard vs limb-shard makespans for one batch size."""

    batch_size: int
    member_makespan: float
    limb_makespan: float

    @property
    def winner(self) -> str:
        """The cheaper strategy (``"member"`` or ``"limb"``)."""
        return "member" if self.member_makespan <= self.limb_makespan else "limb"

    @property
    def advantage(self) -> float:
        """Makespan ratio of the losing plan over the winning one (≥ 1)."""
        lo = min(self.member_makespan, self.limb_makespan)
        hi = max(self.member_makespan, self.limb_makespan)
        return hi / lo if lo > 0 else float("inf")

    def summary(self) -> dict:
        """Machine-readable row (benchmark crossover tables)."""
        return {
            "batch_size": self.batch_size,
            "member_makespan_s": self.member_makespan,
            "limb_makespan_s": self.limb_makespan,
            "winner": self.winner,
        }


class ShardPlanner:
    """Prices shard plans for a topology and predicts the crossover."""

    def __init__(self, topology: ClusterTopology, *,
                 streams: int | None = None) -> None:
        self.topology = topology
        self.cost_model = TraceCostModel(
            topology.devices[0], streams=streams, topology=topology
        )

    def price(self, trace, plan: ShardPlan) -> TraceReport:
        """Price one plan: shard the trace, then cost the multi-device DAG."""
        return self.cost_model.price(plan.apply(trace))

    def compare(self, trace, batch_size: int) -> PlanComparison:
        """Price both strategies for one recorded trace of ``batch_size``."""
        member = MemberShardPlan(self.topology, batch_size)
        limb = LimbShardPlan(self.topology)
        return PlanComparison(
            batch_size=batch_size,
            member_makespan=self.price(trace, member).makespan,
            limb_makespan=self.price(trace, limb).makespan,
        )

    def crossover(self, traces: Mapping[int, object]) -> dict:
        """Predict the member-vs-limb crossover from per-batch traces.

        ``traces`` maps batch size ``B`` to a trace recorded at that batch
        size.  Returns the per-B comparisons plus ``crossover_batch`` --
        the smallest B where member sharding wins (``None`` when limb
        sharding wins everywhere).
        """
        comparisons = [
            self.compare(trace, batch)
            for batch, trace in sorted(traces.items())
        ]
        crossover_batch = next(
            (c.batch_size for c in comparisons if c.winner == "member"), None
        )
        return {
            "topology": self.topology.describe(),
            "comparisons": comparisons,
            "crossover_batch": crossover_batch,
        }

    def place_buckets(self, buckets: Sequence[object]) -> dict[object, int]:
        """Assign serving buckets to devices round-robin (deterministic).

        Whole-bucket placement is the member-shard philosophy applied at
        the serving layer: buckets are independent, so spreading them over
        devices costs no communication.
        """
        count = self.topology.device_count
        return {bucket: i % count for i, bucket in enumerate(buckets)}


__all__ = ["ShardPlanner", "PlanComparison"]
