"""The cluster plane: multi-GPU sharding over interconnect-aware topologies.

Module map (topology → shard plan → sharded trace → multi-device schedule)
--------------------------------------------------------------------------

::

    repro.cluster.topology
        ClusterTopology: N ComputePlatform devices + InterconnectLink
        descriptors (bandwidth GB/s, latency µs) per device pair;
        nvlink_box / pcie_box presets over the Table IV GPUs
                │
                ▼
    repro.cluster.sharding
        ShardPlan.apply(trace): rewrite a recorded single-device
        KernelTrace into a device-tagged multi-device trace
          · MemberShardPlan  -- batch members partitioned across
            devices, zero communication
          · LimbShardPlan    -- RNS limbs partitioned 1/D, all-gather
            TransferKernels inserted at base-conversion boundaries
                │
                ▼
    repro.gpu.stream.StreamScheduler(..., topology=...)
        per-device stream sets + host launch threads; links are serial
        resources; cross-device edges wait for completed transfers
                │
                ▼
    repro.perf.trace_model.TraceCostModel(..., topology=...)
        prices the sharded trace: roofline per-device kernels,
        bandwidth/latency-priced transfers, per-device busy times
                │
                ▼
    repro.cluster.planner
        ShardPlanner: prices both plans per batch size, predicts the
        member-vs-limb crossover, places serving buckets on devices

The serving plane (:mod:`repro.serve`) consumes this: pass a topology to
``CKKSSession.server(..., cluster=...)`` and buckets are placed round-robin
across devices, drains run (bit-identically) per device, and
``ServeMetrics`` reports per-device utilisation.
"""

from repro.cluster.planner import PlanComparison, ShardPlanner
from repro.cluster.sharding import (
    LimbShardPlan,
    MemberShardPlan,
    ShardPlan,
    member_partition,
)
from repro.cluster.topology import (
    NVLINK,
    PCIE_4_X16,
    ClusterTopology,
    InterconnectLink,
    nvlink_box,
    pcie_box,
    single_device,
)

__all__ = [
    "ClusterTopology",
    "InterconnectLink",
    "NVLINK",
    "PCIE_4_X16",
    "single_device",
    "nvlink_box",
    "pcie_box",
    "ShardPlan",
    "MemberShardPlan",
    "LimbShardPlan",
    "member_partition",
    "ShardPlanner",
    "PlanComparison",
]
