"""Shard plans: rewrite a single-device kernel trace for a device cluster.

A :class:`ShardPlan` consumes a trace recorded from the real (single
device) execution plane and produces a new multi-device
:class:`~repro.core.dispatch.KernelTrace` whose kernels carry device tags
and, where the plan requires communication, explicit
:class:`~repro.gpu.kernel.TransferKernel` events with dependency edges.
The two strategies mirror the two parallel axes the stack already has:

**Member sharding** (:class:`MemberShardPlan`) splits the *batch*
dimension of PR 4's fused ``(B·L, N)`` kernels: device ``d`` holds
``members_d`` of the ``B`` ciphertexts and runs the same kernel sequence
over its slice.  Every kernel is copied once per device with its byte/op
volumes scaled by ``members_d / B``; dependency edges stay within each
device and **no transfers exist** -- member sharding is embarrassingly
parallel in steady state, its only cost is that per-device kernels shrink
(losing launch amortisation and some cache efficiency).

**Limb sharding** (:class:`LimbShardPlan`) splits the *RNS limb* rows of
one ciphertext ``1/D`` per device.  Element-wise and NTT kernels are
row-parallel and shard cleanly, but the fast-base-conversion kernels of
ModUp / key-switching (Equation 1) read **every** source limb to produce
each target limb, so ahead of every base-conversion kernel the plan
inserts an all-gather: each device sends its ``1/D`` slice of the kernel's
input to every other device over the interconnect, and the per-device
conversion kernels read the full gathered input (full ``bytes_read``,
``1/D`` of the outputs).  Those transfers are the communication cost the
planner weighs against member sharding.

Base-conversion events are identified structurally: they are the only
kernels built by :func:`repro.gpu.kernel.base_conversion_kernel`, whose
names carry the ``source->target`` limb signature (``"->"``).

Both rewrites are deterministic: events are processed in trace order and
devices in index order, so applying the same plan to the same trace twice
yields identical event streams (a property the tests pin).
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.dispatch import KernelTrace
from repro.gpu.kernel import Kernel, transfer_kernel
from repro.cluster.topology import ClusterTopology


def member_partition(total: int, device_count: int) -> list[int]:
    """Partition ``total`` members over devices, contiguous and near-equal.

    The first ``total % device_count`` devices get one extra member, so
    e.g. 8 members over 3 devices → ``[3, 3, 2]``.  Deterministic; devices
    past ``total`` get zero members.
    """
    if total < 0:
        raise ValueError("cannot partition a negative member count")
    if device_count < 1:
        raise ValueError("at least one device is required")
    base, extra = divmod(total, device_count)
    return [base + (1 if d < extra else 0) for d in range(device_count)]


def member_partition_over(total: int, devices: "list[int]") -> dict[int, int]:
    """Partition ``total`` members over an *explicit* device subset.

    The survivor-aware variant of :func:`member_partition`: after a
    device loss the serving plane re-plans sharded drains over
    ``topology.alive_devices()``, which need not be ``range(D)``.
    Returns ``{device_index: member_count}`` with the same
    contiguous/near-equal split, extras going to the lowest-indexed
    survivors (deterministic).
    """
    devices = sorted(set(int(d) for d in devices))
    if not devices:
        raise ValueError("cannot partition members over zero devices")
    counts = member_partition(total, len(devices))
    return {device: counts[i] for i, device in enumerate(devices)}


def _fraction_of(kernel: Kernel, fraction: float, device: int,
                 *, full_read: bool = False) -> Kernel:
    """A per-device copy of ``kernel`` owning ``fraction`` of its rows.

    ``full_read`` marks the base-conversion case where the device reads the
    complete (gathered) input but produces -- and computes -- only its
    share of the target limbs (Equation 1's MAC count scales with target
    rows).  Launch counts are *not* scaled: each device issues its own
    launches, which is exactly the launch-amortisation loss of sharding.
    """
    return replace(
        kernel,
        bytes_read=kernel.bytes_read * (1.0 if full_read else fraction),
        bytes_written=kernel.bytes_written * fraction,
        int_ops=kernel.int_ops * fraction,
        working_set_bytes=kernel.working_set_bytes * fraction,
        device=device,
    )


def _is_base_conversion(kernel: Kernel) -> bool:
    """True for fast-base-conversion kernels (the all-gather boundaries)."""
    return "->" in kernel.name


def _transfer_scope(scope: str) -> str:
    return f"{scope}/xfer" if scope else "xfer"


class ShardPlan:
    """Base class: a strategy for spreading one trace over a cluster."""

    strategy = "none"

    def __init__(self, topology: ClusterTopology) -> None:
        self.topology = topology

    @property
    def device_count(self) -> int:
        """Number of devices the plan shards over."""
        return self.topology.device_count

    def apply(self, trace: KernelTrace) -> KernelTrace:
        """Rewrite a single-device trace into a sharded multi-device one."""
        raise NotImplementedError

    def describe(self) -> dict:
        """Machine-readable plan summary (benchmark artifacts)."""
        return {"strategy": self.strategy, "topology": self.topology.describe()}


class MemberShardPlan(ShardPlan):
    """Partition the batch members of a fused trace across devices.

    ``batch_size`` is the ``B`` of the recorded fused ``(B·L, N)`` trace;
    device ``d`` receives ``member_partition(B, D)[d]`` members and runs
    kernels scaled to its share.  No communication is inserted.
    """

    strategy = "member"

    def __init__(self, topology: ClusterTopology, batch_size: int, *,
                 devices: "list[int] | None" = None) -> None:
        super().__init__(topology)
        if batch_size < 1:
            raise ValueError("batch size must be at least 1")
        self.batch_size = batch_size
        if devices is None:
            self.members = member_partition(batch_size, topology.device_count)
        else:
            # Survivor re-plan after a device loss: shard only over the
            # named devices, zero members elsewhere.
            for d in devices:
                topology.device(d)
            over = member_partition_over(batch_size, devices)
            self.members = [over.get(d, 0) for d in range(topology.device_count)]

    def apply(self, trace: KernelTrace) -> KernelTrace:
        sharded = KernelTrace()
        # new_index[i][d] -> index of event i's copy on device d
        new_index: list[dict[int, int]] = []
        active = [d for d, m in enumerate(self.members) if m > 0]
        for event in trace:
            copies: dict[int, int] = {}
            for d in active:
                fraction = self.members[d] / self.batch_size
                kernel = _fraction_of(event.kernel, fraction, d)
                deps = [new_index[j][d] for j in event.deps]
                copies[d] = sharded.append(kernel, scope=event.scope, deps=deps).index
            new_index.append(copies)
        return sharded

    def describe(self) -> dict:
        summary = super().describe()
        summary["batch_size"] = self.batch_size
        summary["members_per_device"] = list(self.members)
        return summary


class LimbShardPlan(ShardPlan):
    """Partition the RNS limb rows of a trace ``1/D`` per device.

    Row-parallel kernels shard cleanly; every base-conversion kernel is
    preceded by an all-gather of its input (one transfer per ordered device
    pair, ``bytes_read / D`` each), after which the per-device conversion
    kernels read the full gathered input and write their ``1/D`` of the
    outputs.
    """

    strategy = "limb"

    def apply(self, trace: KernelTrace) -> KernelTrace:
        sharded = KernelTrace()
        count = self.device_count
        fraction = 1.0 / count
        new_index: list[dict[int, int]] = []
        for event in trace:
            copies: dict[int, int] = {}
            if count > 1 and _is_base_conversion(event.kernel):
                # All-gather: each device broadcasts its slice of the
                # kernel's input to every peer before converting.
                payload = event.kernel.bytes_read * fraction
                gathers: dict[int, list[int]] = {d: [] for d in range(count)}
                for src in range(count):
                    src_deps = [new_index[j][src] for j in event.deps]
                    for dst in range(count):
                        if dst == src:
                            continue
                        xfer = transfer_kernel("allgather", payload, src, dst)
                        index = sharded.append(
                            xfer,
                            scope=_transfer_scope(event.scope),
                            deps=src_deps,
                        ).index
                        gathers[dst].append(index)
                for d in range(count):
                    kernel = _fraction_of(event.kernel, fraction, d, full_read=True)
                    deps = [new_index[j][d] for j in event.deps] + gathers[d]
                    copies[d] = sharded.append(
                        kernel, scope=event.scope, deps=deps
                    ).index
            else:
                for d in range(count):
                    kernel = _fraction_of(event.kernel, fraction, d)
                    deps = [new_index[j][d] for j in event.deps]
                    copies[d] = sharded.append(
                        kernel, scope=event.scope, deps=deps
                    ).index
            new_index.append(copies)
        return sharded


__all__ = [
    "ShardPlan",
    "MemberShardPlan",
    "LimbShardPlan",
    "member_partition",
    "member_partition_over",
]
