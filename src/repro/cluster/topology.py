"""Cluster topologies: devices joined by interconnect links.

A :class:`ClusterTopology` is N :class:`~repro.gpu.platforms.ComputePlatform`
devices plus an :class:`InterconnectLink` descriptor (bandwidth GB/s +
latency µs) per device pair.  Links are the serial resources the
multi-device stream scheduler contends on: two transfers over the same
``{a, b}`` pair never overlap, while transfers over disjoint pairs do.

The two presets cover the deployments the paper's multi-GPU discussion
contrasts: an NVLink box (the communication-friendly regime where
limb-sharding a single ciphertext can pay off) and a PCIe box (where the
all-gather at every key-switch boundary makes member-sharding win almost
everywhere).  Both are parameterised by any Table IV GPU from
:mod:`repro.gpu.platforms`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.gpu.platforms import ComputePlatform, GPU_V100, GPU_RTX_4090


@dataclass(frozen=True)
class InterconnectLink:
    """One device-to-device interconnect: bandwidth plus per-copy latency.

    Attributes
    ----------
    name:
        Interconnect generation label (``"NVLink"``, ``"PCIe 4.0 x16"``).
    bandwidth_gbps:
        Unidirectional bandwidth in GB/s.
    latency_us:
        Fixed per-transfer latency (copy-engine setup + hop latency).
    """

    name: str
    bandwidth_gbps: float
    latency_us: float = 2.0

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.latency_us < 0:
            raise ValueError("link latency cannot be negative")

    @property
    def bytes_per_s(self) -> float:
        """Unidirectional link bandwidth in bytes per second."""
        return self.bandwidth_gbps * 1e9

    @property
    def latency_s(self) -> float:
        """Per-transfer latency in seconds."""
        return self.latency_us * 1e-6

    def transfer_time(self, payload_bytes: float) -> float:
        """Seconds one transfer of ``payload_bytes`` occupies this link."""
        if payload_bytes <= 0:
            return 0.0
        return self.latency_s + payload_bytes / self.bytes_per_s

    def scaled(self, bandwidth_factor: float) -> "InterconnectLink":
        """A copy with bandwidth scaled (for planner bandwidth sweeps)."""
        return InterconnectLink(
            name=f"{self.name} x{bandwidth_factor:g}",
            bandwidth_gbps=self.bandwidth_gbps * bandwidth_factor,
            latency_us=self.latency_us,
        )


#: NVLink 2.0-class point-to-point link (V100 SXM boxes).
NVLINK = InterconnectLink("NVLink", bandwidth_gbps=300.0, latency_us=2.0)

#: PCIe 4.0 x16 peer-to-peer (workstation multi-GPU, RTX-class boards).
PCIE_4_X16 = InterconnectLink("PCIe 4.0 x16", bandwidth_gbps=32.0, latency_us=5.0)


class ClusterTopology:
    """N compute devices plus an interconnect link per device pair.

    ``links`` maps unordered device-index pairs to
    :class:`InterconnectLink` descriptors; pairs not named fall back to
    ``default_link``.  A single-device topology needs no links at all and
    makes every multi-device code path degenerate to the existing
    single-GPU behaviour.
    """

    def __init__(
        self,
        devices: Sequence[ComputePlatform],
        *,
        default_link: InterconnectLink | None = None,
        links: Mapping[tuple[int, int], InterconnectLink] | None = None,
        name: str = "",
    ) -> None:
        self.devices: tuple[ComputePlatform, ...] = tuple(devices)
        if not self.devices:
            raise ValueError("a cluster topology needs at least one device")
        #: Indices of devices currently marked lost (fault injection).
        self._down: set[int] = set()
        self.default_link = default_link
        self._links: dict[tuple[int, int], InterconnectLink] = {}
        for pair, link in (links or {}).items():
            a, b = int(pair[0]), int(pair[1])
            if a == b:
                raise ValueError(f"a device cannot link to itself ({a})")
            self._links[(min(a, b), max(a, b))] = link
        self.name = name or f"{self.device_count}x {self.devices[0].name}"

    @property
    def device_count(self) -> int:
        """Number of devices in the cluster."""
        return len(self.devices)

    def device(self, index: int) -> ComputePlatform:
        """The platform of one device (with a range-checked error)."""
        if not 0 <= index < self.device_count:
            raise IndexError(
                f"device {index} does not exist; topology {self.name!r} has "
                f"devices 0..{self.device_count - 1}"
            )
        return self.devices[index]

    # -- device health (fault injection) -------------------------------------

    def mark_down(self, index: int) -> None:
        """Mark one device lost; idempotent.  The serving plane re-places
        that device's buckets on the survivors and re-plans sharded drains
        (see :mod:`repro.serve.faults`)."""
        self.device(index)
        self._down.add(int(index))

    def restore(self, index: int) -> None:
        """Bring a downed device back (idempotent; no automatic re-balance)."""
        self.device(index)
        self._down.discard(int(index))

    def is_down(self, index: int) -> bool:
        """Whether one device is currently marked lost."""
        self.device(index)
        return int(index) in self._down

    def alive_devices(self) -> list[int]:
        """Indices of devices not marked down, ascending."""
        return [d for d in range(self.device_count) if d not in self._down]

    def link(self, a: int, b: int) -> InterconnectLink:
        """The link joining devices ``a`` and ``b`` (order-insensitive)."""
        self.device(a), self.device(b)
        if a == b:
            raise ValueError(
                f"device {a} needs no link to itself; same-device transfers "
                f"are no-ops"
            )
        pair = (min(a, b), max(a, b))
        found = self._links.get(pair, self.default_link)
        if found is None:
            raise KeyError(
                f"topology {self.name!r} has no link between devices {a} and "
                f"{b} and no default link"
            )
        return found

    def with_link(self, link: InterconnectLink) -> "ClusterTopology":
        """A copy of this topology with every pair joined by ``link``."""
        return ClusterTopology(
            self.devices, default_link=link,
            name=f"{self.device_count}x {self.devices[0].name} / {link.name}",
        )

    def describe(self) -> dict:
        """Machine-readable topology summary (benchmark artifacts)."""
        return {
            "name": self.name,
            "devices": [p.name for p in self.devices],
            "down_devices": sorted(self._down),
            "default_link": (
                {
                    "name": self.default_link.name,
                    "bandwidth_gbps": self.default_link.bandwidth_gbps,
                    "latency_us": self.default_link.latency_us,
                }
                if self.default_link is not None
                else None
            ),
        }

    def __repr__(self) -> str:
        return f"ClusterTopology({self.name!r}, devices={self.device_count})"


def single_device(platform: ComputePlatform) -> ClusterTopology:
    """A degenerate one-device topology (the existing single-GPU model)."""
    return ClusterTopology([platform], name=f"1x {platform.name}")


def nvlink_box(device_count: int = 4,
               platform: ComputePlatform = GPU_V100,
               link: InterconnectLink = NVLINK) -> ClusterTopology:
    """An all-to-all NVLink box of identical Table IV GPUs."""
    return ClusterTopology(
        [platform] * device_count, default_link=link,
        name=f"{device_count}x {platform.name} / {link.name}",
    )


def pcie_box(device_count: int = 4,
             platform: ComputePlatform = GPU_RTX_4090,
             link: InterconnectLink = PCIE_4_X16) -> ClusterTopology:
    """A PCIe workstation box of identical Table IV GPUs."""
    return ClusterTopology(
        [platform] * device_count, default_link=link,
        name=f"{device_count}x {platform.name} / {link.name}",
    )


__all__ = [
    "InterconnectLink",
    "ClusterTopology",
    "NVLINK",
    "PCIE_4_X16",
    "single_device",
    "nvlink_box",
    "pcie_box",
]
