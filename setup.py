"""Setuptools shim for environments without PEP 517 wheel support."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.2.0",
    description=(
        "Python reproduction of FIDESlib: a fully-fledged CKKS FHE library "
        "with a GPU execution-model backend (ISPASS 2025)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
